package core

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/profile"
)

// UnrollOptions configures the loop-unrolling pre-pass.
type UnrollOptions struct {
	// Factor is the number of body copies after unrolling (>= 2).
	Factor int
	// MinIterations is the minimum profiled traversal count of the loop's
	// back edge for the loop to be worth unrolling.
	MinIterations uint64
	// MaxBodyInstrs bounds the body size to duplicate.
	MaxBodyInstrs int
}

// DefaultUnrollOptions returns the defaults used by the experiments: 4-way
// unrolling of single-block loops executed at least 64 times with bodies of
// at most 32 instructions.
func DefaultUnrollOptions() UnrollOptions {
	return UnrollOptions{Factor: 4, MinIterations: 64, MaxBodyInstrs: 32}
}

// UnrollStats reports what UnrollLoops did.
type UnrollStats struct {
	// LoopsUnrolled counts transformed loops.
	LoopsUnrolled int
	// BlocksAdded counts the synthesized copy blocks.
	BlocksAdded int
}

// UnrollLoops implements the transformation the paper sketches for ALVINN's
// input_hidden (Figure 2): a hot loop whose body is a single basic block
// ending in a conditional branch to itself is duplicated Factor times; the
// first Factor-1 copies exit the loop through an inverted conditional and
// fall through to the next copy, and the last copy branches back to the
// first. Per Factor iterations, only one taken branch remains; on the
// FALLTHROUGH architecture this removes most of the per-iteration
// mispredicts even without the register-level optimizations full loop
// unrolling would add.
//
// The condition is re-evaluated in every copy, so the transformation is
// semantics-preserving for any trip count. The returned profile maps the
// original loop's counts onto the copies (the back edge's traversals are
// split evenly; remainders are attributed to the first copies).
func UnrollLoops(prog *ir.Program, pf *profile.Profile, opts UnrollOptions) (*ir.Program, *profile.Profile, UnrollStats, error) {
	var stats UnrollStats
	if opts.Factor < 2 {
		return nil, nil, stats, fmt.Errorf("core: unroll factor must be >= 2, got %d", opts.Factor)
	}
	if opts.MaxBodyInstrs <= 0 {
		opts.MaxBodyInstrs = DefaultUnrollOptions().MaxBodyInstrs
	}

	out := &ir.Program{Name: prog.Name, EntryProc: prog.EntryProc, MemWords: prog.MemWords}
	npf := profile.New(pf.Program)
	npf.Instrs = pf.Instrs

	for _, p := range prog.Procs {
		pp := pf.Procs[p.Name]
		np, npp, procStats := unrollProc(p, pp, opts)
		out.Procs = append(out.Procs, np)
		if npp != nil {
			npf.Procs[p.Name] = npp
		}
		stats.LoopsUnrolled += procStats.LoopsUnrolled
		stats.BlocksAdded += procStats.BlocksAdded
	}
	out.AssignAddresses(0x1000)
	if err := out.Validate(); err != nil {
		return nil, nil, stats, fmt.Errorf("core: unrolled program invalid: %w", err)
	}
	return out, npf, stats, nil
}

// selfLoop reports whether block id is a hot single-block self loop.
func selfLoop(p *ir.Proc, pp *profile.ProcProfile, id ir.BlockID, opts UnrollOptions) bool {
	b := p.Blocks[id]
	term, ok := b.Terminator()
	if !ok || term.Kind() != ir.CondBr || term.TargetBlock != id {
		return false
	}
	if len(b.Instrs) > opts.MaxBodyInstrs {
		return false
	}
	if pp == nil {
		return false
	}
	return pp.Branches[id].Taken >= opts.MinIterations
}

func unrollProc(p *ir.Proc, pp *profile.ProcProfile, opts UnrollOptions) (*ir.Proc, *profile.ProcProfile, UnrollStats) {
	var stats UnrollStats
	np := &ir.Proc{Name: p.Name}
	oldToNew := make([]ir.BlockID, len(p.Blocks))
	// copyHead[old] is the first copy's new ID for unrolled loops.
	type unrolledLoop struct {
		old    ir.BlockID
		copies []ir.BlockID
	}
	var loops []unrolledLoop

	for id, b := range p.Blocks {
		old := ir.BlockID(id)
		if !selfLoop(p, pp, old, opts) {
			nb := b.Clone()
			np.Blocks = append(np.Blocks, nb)
			oldToNew[old] = ir.BlockID(len(np.Blocks) - 1)
			continue
		}
		// Emit Factor copies. Copies 0..Factor-2 end with the inverted
		// conditional targeting the loop exit (the original fall-through,
		// i.e. old+1) and fall through to the next copy; the last copy
		// keeps the original sense, branching back to copy 0.
		ul := unrolledLoop{old: old}
		for c := 0; c < opts.Factor; c++ {
			nb := b.Clone()
			if c == 0 {
				nb.Orig = old
			} else {
				nb.Orig = ir.NoBlock
				nb.Label = ""
				stats.BlocksAdded++
			}
			np.Blocks = append(np.Blocks, nb)
			ul.copies = append(ul.copies, ir.BlockID(len(np.Blocks)-1))
		}
		oldToNew[old] = ul.copies[0]
		loops = append(loops, ul)
		stats.LoopsUnrolled++
	}

	// Patch branch targets. For unrolled loops the terminators need their
	// special orientation; exitTarget records the original fall-through in
	// old IDs for the second patch pass.
	for _, ul := range loops {
		exitOld := ul.old + 1 // a conditional block always falls through
		for c, nid := range ul.copies {
			term, _ := np.Blocks[nid].Terminator()
			if c < len(ul.copies)-1 {
				term.Op = ir.InvertBranch(term.Op)
				term.TargetBlock = exitOld // patched below
			} else {
				term.TargetBlock = ul.old // back to copy 0; patched below
			}
		}
	}
	for _, nb := range np.Blocks {
		for ii := range nb.Instrs {
			in := &nb.Instrs[ii]
			switch in.Kind() {
			case ir.CondBr, ir.Br:
				in.TargetBlock = oldToNew[in.TargetBlock]
			case ir.IJump:
				for k, t := range in.Targets {
					in.Targets[k] = oldToNew[t]
				}
			}
		}
	}

	if pp == nil {
		return np, nil, stats
	}

	// Transfer the profile.
	npp := profile.NewProcProfile()
	loopSet := make(map[ir.BlockID]*unrolledLoop, len(loops))
	for i := range loops {
		loopSet[loops[i].old] = &loops[i]
	}
	for e, w := range pp.Edges {
		if int(e.From) >= len(oldToNew) || int(e.To) >= len(oldToNew) {
			continue
		}
		ul, fromLoop := loopSet[e.From]
		switch {
		case fromLoop && e.To == e.From:
			// The back edge: iterations now flow through the copy chain.
			// Each fall-through between copies and the final back edge
			// carries ~w/Factor traversals.
			k := uint64(len(ul.copies))
			per := w / k
			rem := w % k
			for c := 0; c < len(ul.copies); c++ {
				cw := per
				if uint64(c) < rem {
					cw++
				}
				var dst ir.BlockID
				if c < len(ul.copies)-1 {
					dst = ul.copies[c+1]
				} else {
					dst = ul.copies[0]
				}
				npp.Edges[profile.Edge{From: ul.copies[c], To: dst}] += cw
				bc := npp.Branches[ul.copies[c]]
				if c < len(ul.copies)-1 {
					bc.Fall += cw // inverted copies fall through to continue
				} else {
					bc.Taken += cw
				}
				npp.Branches[ul.copies[c]] = bc
			}
		case fromLoop:
			// The exit edge: exits are spread across the copies; attribute
			// them all to the copies' exit branches evenly.
			k := uint64(len(ul.copies))
			per := w / k
			rem := w % k
			for c := 0; c < len(ul.copies); c++ {
				cw := per
				if uint64(c) < rem {
					cw++
				}
				npp.Edges[profile.Edge{From: ul.copies[c], To: oldToNew[e.To]}] += cw
				bc := npp.Branches[ul.copies[c]]
				if c < len(ul.copies)-1 {
					bc.Taken += cw // inverted copies exit via the taken edge
				} else {
					bc.Fall += cw
				}
				npp.Branches[ul.copies[c]] = bc
			}
		default:
			npp.Edges[profile.Edge{From: oldToNew[e.From], To: oldToNew[e.To]}] += w
		}
	}
	for old, c := range pp.Branches {
		if int(old) >= len(oldToNew) {
			continue
		}
		if _, isLoop := loopSet[old]; isLoop {
			continue // handled above
		}
		npp.Branches[oldToNew[old]] = c
	}
	return np, npp, stats
}
