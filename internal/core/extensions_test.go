package core

import (
	"testing"

	"balign/internal/asm"
	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/trace"
	"balign/internal/vm"
)

const selfLoopSrc = `
mem 16
proc main
    li r1, 1000
    li r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, -1
    bnez r1, loop
    st r2, 0(r0)
    halt
endproc
`

func TestUnrollLoopsSemantics(t *testing.T) {
	prog, err := asm.Assemble(selfLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil)
	wantRegs, wantMem, _ := runVM(t, prog, nil)

	for _, factor := range []int{2, 3, 4, 8} {
		opts := UnrollOptions{Factor: factor, MinIterations: 10, MaxBodyInstrs: 16}
		up, upf, stats, err := UnrollLoops(prog, pf, opts)
		if err != nil {
			t.Fatalf("factor %d: %v", factor, err)
		}
		if stats.LoopsUnrolled != 1 {
			t.Fatalf("factor %d: LoopsUnrolled = %d, want 1", factor, stats.LoopsUnrolled)
		}
		if stats.BlocksAdded != factor-1 {
			t.Errorf("factor %d: BlocksAdded = %d, want %d", factor, stats.BlocksAdded, factor-1)
		}
		gotRegs, gotMem, _ := runVM(t, up, nil)
		for r := range wantRegs {
			if gotRegs[r] != wantRegs[r] {
				t.Fatalf("factor %d: r%d = %d, want %d", factor, r, gotRegs[r], wantRegs[r])
			}
		}
		for a := range wantMem {
			if gotMem[a] != wantMem[a] {
				t.Fatalf("factor %d: mem[%d] = %d, want %d", factor, a, gotMem[a], wantMem[a])
			}
		}
		if upf.Procs["main"] == nil {
			t.Fatalf("factor %d: transferred profile missing", factor)
		}
		// The trip count is divisible by the tested factors of 1000 only
		// for 2 and 4; either way the taken rate of the event stream must
		// drop to roughly 1/factor.
		var cnt trace.Counter
		m := vm.New(up)
		if _, err := m.Run(&cnt, nil); err != nil {
			t.Fatal(err)
		}
		takenRate := float64(cnt.CondTaken) / float64(cnt.CondTaken+cnt.CondFall)
		want := 1.0 / float64(factor)
		if takenRate > want+0.05 {
			t.Errorf("factor %d: taken rate %.3f, want about %.3f", factor, takenRate, want)
		}
	}
}

func TestUnrollReducesFallthroughPenalty(t *testing.T) {
	prog, err := asm.Assemble(selfLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil)

	measure := func(p *ir.Program) uint64 {
		sim := predict.NewStaticSim(predict.Fallthrough{})
		m := vm.New(p)
		if _, err := m.Run(sim, nil); err != nil {
			t.Fatal(err)
		}
		r := sim.Result()
		return r.BEP(1, 4)
	}
	before := measure(prog)
	up, _, _, err := UnrollLoops(prog, pf, UnrollOptions{Factor: 4, MinIterations: 10, MaxBodyInstrs: 16})
	if err != nil {
		t.Fatal(err)
	}
	after := measure(up)
	// 1000 mispredicted taken branches become ~250: the BEP should drop by
	// well over half.
	if after >= before/2 {
		t.Errorf("unrolling cut BEP only %d -> %d", before, after)
	}
}

func TestUnrollComposesWithAlignment(t *testing.T) {
	prog, err := asm.Assemble(selfLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil)
	up, upf, _, err := UnrollLoops(prog, pf, UnrollOptions{Factor: 4, MinIterations: 10, MaxBodyInstrs: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AlignProgram(up, upf, Options{Algorithm: AlgoTryN, Model: cost.FallthroughModel{}, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	wantRegs, _, _ := runVM(t, prog, nil)
	gotRegs, _, _ := runVM(t, res.Prog, nil)
	for r := range wantRegs {
		if gotRegs[r] != wantRegs[r] {
			t.Fatalf("unroll+align broke semantics at r%d", r)
		}
	}
}

func TestUnrollRejectsBadFactor(t *testing.T) {
	prog, err := asm.Assemble(selfLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil)
	if _, _, _, err := UnrollLoops(prog, pf, UnrollOptions{Factor: 1}); err == nil {
		t.Error("factor 1 should error")
	}
}

func TestUnrollSkipsColdAndBigLoops(t *testing.T) {
	prog, err := asm.Assemble(selfLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil)
	// MinIterations above the trip count: nothing unrolled.
	_, _, stats, err := UnrollLoops(prog, pf, UnrollOptions{Factor: 4, MinIterations: 10_000, MaxBodyInstrs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LoopsUnrolled != 0 {
		t.Errorf("cold loop unrolled")
	}
	// Body too big: nothing unrolled.
	_, _, stats, err = UnrollLoops(prog, pf, UnrollOptions{Factor: 4, MinIterations: 10, MaxBodyInstrs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LoopsUnrolled != 0 {
		t.Errorf("oversized loop body unrolled")
	}
}

const callsSrc = `
mem 16
proc main
    li r1, 50
ml:
    call hot
    call hot
    call cold
    addi r1, r1, -1
    bnez r1, ml
    halt
endproc
proc cold
    addi r3, r3, 1
    ret
endproc
proc hot
    addi r2, r2, 1
    ret
endproc
`

func TestProcHotness(t *testing.T) {
	prog, err := asm.Assemble(callsSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil)
	hot := ProcHotness(prog, pf)
	hotIdx := prog.ProcByName("hot")
	coldIdx := prog.ProcByName("cold")
	if hot[hotIdx] <= hot[coldIdx] {
		t.Errorf("hotness: hot=%d cold=%d, want hot > cold", hot[hotIdx], hot[coldIdx])
	}
}

func TestReorderProcs(t *testing.T) {
	prog, err := asm.Assemble(callsSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil)
	wantRegs, _, _ := runVM(t, prog, nil)

	out, err := ReorderProcs(prog, pf)
	if err != nil {
		t.Fatal(err)
	}
	// Entry stays first; hot precedes cold.
	if out.Procs[0].Name != "main" {
		t.Errorf("entry proc moved: %q first", out.Procs[0].Name)
	}
	if out.ProcByName("hot") > out.ProcByName("cold") {
		t.Errorf("hot proc (%d) not before cold (%d)", out.ProcByName("hot"), out.ProcByName("cold"))
	}
	gotRegs, _, _ := runVM(t, out, nil)
	for r := range wantRegs {
		if gotRegs[r] != wantRegs[r] {
			t.Fatalf("reordering broke semantics at r%d: %d != %d", r, gotRegs[r], wantRegs[r])
		}
	}
	// Profile keyed by name still prices identically.
	m := cost.FallthroughModel{}
	if a, b := cost.ProgramCost(prog, pf, m), cost.ProgramCost(out, pf, m); a != b {
		t.Errorf("intra-procedural cost changed under reordering: %.0f vs %.0f", a, b)
	}
}

func TestReorderProcsThenAlign(t *testing.T) {
	prog, err := asm.Assemble(callsSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil)
	out, err := ReorderProcs(prog, pf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AlignProgram(out, pf, Options{Algorithm: AlgoTryN, Model: cost.BTFNTModel{}, Window: 6})
	if err != nil {
		t.Fatal(err)
	}
	wantRegs, _, _ := runVM(t, prog, nil)
	gotRegs, _, _ := runVM(t, res.Prog, nil)
	for r := range wantRegs {
		if gotRegs[r] != wantRegs[r] {
			t.Fatalf("reorder+align broke semantics at r%d", r)
		}
	}
}
