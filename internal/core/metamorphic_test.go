package core

import (
	"fmt"
	"testing"

	"balign/internal/cost"
	"balign/internal/workload"
)

// TestAlignmentNeverWorsensModelCost is the metamorphic property behind the
// whole transformation: for the model-guided algorithms (Cost and TryN),
// realigning a program must not increase its layout cost under the very
// model that guided the alignment — both optimize that objective and both
// may fall back to keeping a layout when no improvement exists. (Greedy
// carries no such guarantee: it chains by edge weight without consulting a
// model, and the paper's Figure 3 is exactly a case where it loses.)
//
// The property is checked across suite programs and every cost model, and
// the suite runs under -race in the verify target, so it doubles as a
// concurrency check on the alignment path.
func TestAlignmentNeverWorsensModelCost(t *testing.T) {
	programs := []string{"ora", "compress", "espresso", "db++", "doduc"}
	models := []cost.Model{
		cost.FallthroughModel{}, cost.BTFNTModel{}, cost.LikelyModel{},
		cost.PHTModel{}, cost.BTBModel{},
	}
	algos := []Algorithm{AlgoCost, AlgoTryN}

	for _, name := range programs {
		w, err := workload.ByName(name, workload.Config{Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		pf, _, err := w.CollectProfile()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range models {
			base := cost.ProgramCost(w.Prog, pf, m)
			for _, algo := range algos {
				t.Run(fmt.Sprintf("%s/%s/%s", name, m.Name(), algo), func(t *testing.T) {
					res, err := AlignProgram(w.Prog, pf, Options{
						Algorithm: algo, Model: m,
						Window: 6, MaxCombos: 1 << 12,
					})
					if err != nil {
						t.Fatal(err)
					}
					aligned := cost.ProgramCost(res.Prog, res.Prof, m)
					// Allow for float accumulation noise on equal layouts.
					if aligned > base*(1+1e-9) {
						t.Errorf("aligned layout cost %.3f exceeds original %.3f under %s",
							aligned, base, m.Name())
					}
				})
			}
		}
	}
}
