package core

import (
	"sort"

	"balign/internal/ir"
	"balign/internal/profile"
)

// ChainOrder selects how completed chains are sequenced into the final
// procedure layout.
type ChainOrder int

const (
	// OrderHottest lays chains out from most to least frequently executed.
	// The paper's OM implementation found this slightly better overall than
	// the BT/FNT precedence order, because it satisfies most backward-taken
	// preferences while also improving cache locality.
	OrderHottest ChainOrder = iota
	// OrderBTFNT orders chains by the Pettis–Hansen precedence relation for
	// the BT/FNT architecture: a chain containing the target of a hot taken
	// branch prefers to precede the chain containing the branch, making the
	// branch backward and hence predicted taken.
	OrderBTFNT
)

// String names the order for reports.
func (o ChainOrder) String() string {
	switch o {
	case OrderHottest:
		return "hottest-first"
	case OrderBTFNT:
		return "btfnt-precedence"
	default:
		return "order?"
	}
}

// orderChains sequences the chains of c into a final block layout. The
// entry block's chain is always first; remaining chains follow per the
// selected strategy. Returns the block IDs in final layout order.
func orderChains(c *chains, pp *profile.ProcProfile, order ChainOrder) []ir.BlockID {
	p := c.proc
	entryHead := c.head(p.Entry())
	heads := c.heads()

	// Chain weight: total execution weight of its blocks (sum of incoming
	// edge weights), used by both strategies for tie-breaking and by
	// OrderHottest as the primary key.
	blockWeight := make([]uint64, len(p.Blocks))
	for e, w := range pp.Edges {
		if int(e.To) < len(blockWeight) {
			blockWeight[e.To] += w
		}
	}
	// The entry block also executes once per invocation, with no incoming
	// edge to show for it.
	blockWeight[p.Entry()] += pp.EntryCount
	chainWeight := make(map[ir.BlockID]uint64, len(heads))
	for _, h := range heads {
		var w uint64
		for _, b := range c.chainBlocks(h) {
			w += blockWeight[b]
		}
		chainWeight[h] = w
	}

	var rest []ir.BlockID
	for _, h := range heads {
		if h != entryHead {
			rest = append(rest, h)
		}
	}

	switch order {
	case OrderBTFNT:
		rest = orderByPrecedence(c, pp, rest, chainWeight)
	default:
		sort.SliceStable(rest, func(i, j int) bool {
			wi, wj := chainWeight[rest[i]], chainWeight[rest[j]]
			if wi != wj {
				return wi > wj
			}
			return rest[i] < rest[j]
		})
	}

	layout := make([]ir.BlockID, 0, len(p.Blocks))
	layout = append(layout, c.chainBlocks(entryHead)...)
	for _, h := range rest {
		layout = append(layout, c.chainBlocks(h)...)
	}
	return layout
}

// orderByPrecedence implements the Pettis–Hansen BT/FNT chain precedence:
// for every inter-chain conditional taken edge S->D with weight w, the chain
// of D gains w units of preference to precede the chain of S. Chains are
// emitted greedily: repeatedly pick the chain with the least unsatisfied
// "should come after" weight (fewest predecessors still unplaced), breaking
// ties by execution weight then block ID. This is a weighted topological
// sort that breaks cycles by weight, as the paper's implementation does.
func orderByPrecedence(c *chains, pp *profile.ProcProfile, heads []ir.BlockID, chainWeight map[ir.BlockID]uint64) []ir.BlockID {
	p := c.proc
	entryHead := c.head(p.Entry())

	// pendingBefore[h] = total weight of edges demanding some unplaced
	// chain be placed before h.
	pendingBefore := make(map[ir.BlockID]uint64, len(heads))
	// wants[a] lists (b, w): chain a should precede chain b with weight w.
	wants := make(map[ir.BlockID]map[ir.BlockID]uint64)
	addWant := func(before, after ir.BlockID, w uint64) {
		m := wants[before]
		if m == nil {
			m = make(map[ir.BlockID]uint64)
			wants[before] = m
		}
		m[after] += w
		pendingBefore[after] += w
	}

	inSet := make(map[ir.BlockID]bool, len(heads))
	for _, h := range heads {
		inSet[h] = true
		if _, ok := pendingBefore[h]; !ok {
			pendingBefore[h] = 0
		}
	}

	var scratch []ir.Edge
	for id := range p.Blocks {
		scratch = p.OutEdges(ir.BlockID(id), scratch[:0])
		for _, e := range scratch {
			if e.Kind != ir.EdgeTaken {
				continue
			}
			hs, hd := c.head(e.From), c.head(e.To)
			if hs == hd {
				continue // intra-chain: position already fixed
			}
			// The entry chain is pinned first, so preferences involving it
			// are moot.
			if hd == entryHead || hs == entryHead {
				continue
			}
			// BT/FNT predicts by displacement sign, on every execution of
			// the branch: a mostly-taken branch wants its target backward
			// (chain of D before chain of S), but a mostly-falling branch
			// wants the target FORWARD, or the common not-taken executions
			// all mispredict. Weight the preference by the branch's net
			// direction.
			bc := pp.Branches[e.From]
			wTaken := pp.Weight(e.From, e.To)
			wFall := bc.Fall
			switch {
			case wTaken > wFall:
				addWant(hd, hs, wTaken-wFall)
			case wFall > wTaken:
				addWant(hs, hd, wFall-wTaken)
			}
		}
	}

	var out []ir.BlockID
	placed := make(map[ir.BlockID]bool, len(heads))
	for len(out) < len(heads) {
		var best ir.BlockID = ir.NoBlock
		for _, h := range heads {
			if placed[h] {
				continue
			}
			if best == ir.NoBlock {
				best = h
				continue
			}
			pb, pbBest := pendingBefore[h], pendingBefore[best]
			switch {
			case pb < pbBest:
				best = h
			case pb == pbBest:
				wb, wBest := chainWeight[h], chainWeight[best]
				if wb > wBest || (wb == wBest && h < best) {
					best = h
				}
			}
		}
		placed[best] = true
		out = append(out, best)
		// Placing best satisfies its outgoing preferences.
		for after, w := range wants[best] {
			if !placed[after] {
				pendingBefore[after] -= w
			}
		}
	}
	return out
}
