package core

import (
	"testing"

	"balign/internal/asm"
	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/vm"
)

func TestChainsLinkBasics(t *testing.T) {
	p := &ir.Proc{Name: "p", Blocks: make([]*ir.Block, 5)}
	for i := range p.Blocks {
		p.Blocks[i] = &ir.Block{Instrs: []ir.Instr{{Op: ir.OpRet}}}
	}
	c := newChains(p)

	if !c.canLink(1, 2) {
		t.Fatal("fresh blocks should be linkable")
	}
	c.link(1, 2)
	if c.next[1] != 2 || c.prev[2] != 1 {
		t.Errorf("next/prev = %d/%d, want 2/1", c.next[1], c.prev[2])
	}
	if c.canLink(1, 3) {
		t.Error("1 already has a successor")
	}
	if c.canLink(3, 2) {
		t.Error("2 already has a predecessor")
	}
	if c.canLink(2, 1) {
		t.Error("linking 2->1 would close a cycle")
	}
	if c.canLink(3, 0) {
		t.Error("entry block cannot get a predecessor")
	}
	c.link(2, 3)
	got := c.chainBlocks(2)
	want := []ir.BlockID{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("chainBlocks = %v, want %v", got, want)
	}
	if h := c.head(3); h != 1 {
		t.Errorf("head(3) = %d, want 1", h)
	}
	heads := c.heads()
	if len(heads) != 3 { // chains: {0}, {1,2,3}, {4}
		t.Errorf("heads = %v, want 3 chains", heads)
	}
}

func TestChainsTentativeUndo(t *testing.T) {
	p := &ir.Proc{Name: "p", Blocks: make([]*ir.Block, 4)}
	for i := range p.Blocks {
		p.Blocks[i] = &ir.Block{Instrs: []ir.Instr{{Op: ir.OpRet}}}
	}
	c := newChains(p)
	c.link(1, 2)

	rec := c.tentativeLink(2, 3)
	if c.findNoCompress(1) != c.findNoCompress(3) {
		t.Error("tentative link did not merge chains")
	}
	c.undo(rec)
	if c.findNoCompress(1) == c.findNoCompress(3) {
		t.Error("undo did not split chains")
	}
	if c.next[2] != ir.NoBlock || c.prev[3] != ir.NoBlock {
		t.Error("undo did not clear next/prev")
	}
	// State must be identical to before: re-linking works.
	if !c.canLink(2, 3) {
		t.Error("canLink(2,3) false after undo")
	}
	// Nested tentative links undone in reverse order.
	r1 := c.tentativeLink(2, 3)
	r2 := c.tentativeLink(3, 0+0) // 3 -> 0 is entry; pick another
	_ = r2
	c.undo(r2)
	c.undo(r1)
	if c.next[2] != ir.NoBlock {
		t.Error("nested undo failed")
	}
}

func TestAlignableEdgesOrderingAndFilter(t *testing.T) {
	// b0: cond -> b2 / fall b1; b1: br -> b3; b2: ijump [b3]; b3: ret
	p := &ir.Proc{Name: "p", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpBnez, Rd: 1, TargetBlock: 2}}},
		{Instrs: []ir.Instr{{Op: ir.OpBr, TargetBlock: 3}}},
		{Instrs: []ir.Instr{{Op: ir.OpIJump, Rd: 1, Targets: []ir.BlockID{3}}}},
		{Instrs: []ir.Instr{{Op: ir.OpRet}}},
	}}
	w := map[[2]ir.BlockID]uint64{
		{0, 2}: 5, {0, 1}: 10, {1, 3}: 7, {2, 3}: 100,
	}
	weight := func(f, to ir.BlockID) uint64 { return w[[2]ir.BlockID{f, to}] }
	edges := alignableEdges(p, weight, 1)
	if len(edges) != 3 {
		t.Fatalf("edges = %v, want 3 (indirect excluded)", edges)
	}
	if edges[0].from != 0 || edges[0].to != 1 || edges[0].weight != 10 {
		t.Errorf("hottest edge = %+v, want 0->1 w10", edges[0])
	}
	if edges[1].weight != 7 || edges[2].weight != 5 {
		t.Errorf("order wrong: %+v", edges)
	}
	// minWeight filter.
	if got := alignableEdges(p, weight, 8); len(got) != 1 {
		t.Errorf("minWeight filter: %v, want 1 edge", got)
	}
}

// profileByVM runs the program in the VM and returns its edge profile.
func profileByVM(t *testing.T, prog *ir.Program, setup func(*vm.VM)) *profile.Profile {
	t.Helper()
	machine := vm.New(prog)
	if setup != nil {
		setup(machine)
	}
	col := profile.NewCollector(prog)
	if _, err := machine.Run(nil, col); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	return col.Profile()
}

// runVM executes a program and returns selected register values and memory.
func runVM(t *testing.T, prog *ir.Program, setup func(*vm.VM)) ([]int64, []int64, uint64) {
	t.Helper()
	machine := vm.New(prog)
	if setup != nil {
		setup(machine)
	}
	res, err := machine.Run(nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	regs := make([]int64, ir.NumRegs)
	for i := 0; i < ir.NumRegs; i++ {
		regs[i] = machine.Reg(i)
	}
	mem := append([]int64(nil), machine.Mem()...)
	return regs, mem, res.Instrs
}

const sortSrc = `
mem 64
; bubble sort of 8 values at mem[0..7]; inner loop branches are data-driven
proc main
    li r1, 8          ; n
    li r2, 0          ; i
outer:
    li r3, 0          ; j
    sub r4, r1, r2
    addi r4, r4, -1   ; n-i-1
inner:
    ld r5, 0(r3)
    addi r6, r3, 1
    ld r7, 0(r6)
    ble r5, r7, noswap
    st r7, 0(r3)
    st r5, 0(r6)
noswap:
    addi r3, r3, 1
    blt r3, r4, inner
    addi r2, r2, 1
    addi r8, r1, -1
    blt r2, r8, outer
    halt
endproc
`

func sortSetup(v *vm.VM) {
	v.SetMem(0, []int64{42, 7, 99, -3, 0, 55, 13, 8})
}

func allAlgorithms() []Options {
	return []Options{
		{Algorithm: AlgoGreedy},
		{Algorithm: AlgoGreedy, Order: OrderBTFNT},
		{Algorithm: AlgoCost, Model: cost.FallthroughModel{}},
		{Algorithm: AlgoCost, Model: cost.BTFNTModel{}, Order: OrderBTFNT},
		{Algorithm: AlgoCost, Model: cost.LikelyModel{}},
		{Algorithm: AlgoTryN, Model: cost.FallthroughModel{}, Window: 8},
		{Algorithm: AlgoTryN, Model: cost.BTFNTModel{}, Window: 8, Order: OrderBTFNT},
		{Algorithm: AlgoTryN, Model: cost.PHTModel{}, Window: 8},
		{Algorithm: AlgoTryN, Model: cost.BTBModel{}, Window: 8},
	}
}

func TestAlignmentPreservesSemantics(t *testing.T) {
	sources := map[string]struct {
		src   string
		setup func(*vm.VM)
	}{
		"sort": {sortSrc, sortSetup},
		"collatz": {`
mem 16
proc main
    li r1, 27      ; n
    li r2, 0       ; steps
loop:
    beq r1, r10, done   ; r10 == 0? no: compare to 1 below
    li r3, 1
    beq r1, r3, done
    andi r4, r1, 1
    beqz r4, even
    muli r1, r1, 3
    addi r1, r1, 1
    br next
even:
    li r5, 2
    div r1, r1, r5
next:
    addi r2, r2, 1
    br loop
done:
    st r2, 0(r0)
    halt
endproc
`, nil},
		"calls": {`
mem 16
proc main
    li r1, 6
    call fib
    st r2, 0(r0)
    halt
endproc
; iterative fibonacci: r2 = fib(r1)
proc fib
    li r2, 0
    li r3, 1
    li r4, 0
floop:
    bge r4, r1, fdone
    add r5, r2, r3
    mov r2, r3
    mov r3, r5
    addi r4, r4, 1
    br floop
fdone:
    ret
endproc
`, nil},
	}

	for name, tc := range sources {
		prog, err := asm.Assemble(tc.src)
		if err != nil {
			t.Fatalf("%s: assemble: %v", name, err)
		}
		pf := profileByVM(t, prog, tc.setup)
		wantRegs, wantMem, _ := runVM(t, prog, tc.setup)

		for _, opts := range allAlgorithms() {
			res, err := AlignProgram(prog, pf, opts)
			if err != nil {
				t.Errorf("%s/%s: align: %v", name, opts.Algorithm, err)
				continue
			}
			if err := res.Prog.Validate(); err != nil {
				t.Errorf("%s/%s: aligned program invalid: %v", name, opts.Algorithm, err)
				continue
			}
			gotRegs, gotMem, _ := runVM(t, res.Prog, tc.setup)
			for r := range wantRegs {
				if gotRegs[r] != wantRegs[r] {
					t.Errorf("%s/%s(%v): r%d = %d, want %d",
						name, opts.Algorithm, opts.Model, r, gotRegs[r], wantRegs[r])
				}
			}
			for a := range wantMem {
				if gotMem[a] != wantMem[a] {
					t.Errorf("%s/%s: mem[%d] = %d, want %d",
						name, opts.Algorithm, a, gotMem[a], wantMem[a])
				}
			}
		}
	}
}

func TestAlignedInstrDeltaMatchesExecution(t *testing.T) {
	prog, err := asm.Assemble(sortSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pf := profileByVM(t, prog, sortSetup)
	_, _, origInstrs := runVM(t, prog, sortSetup)

	for _, opts := range allAlgorithms() {
		res, err := AlignProgram(prog, pf, opts)
		if err != nil {
			t.Fatalf("%s: %v", opts.Algorithm, err)
		}
		_, _, gotInstrs := runVM(t, res.Prog, sortSetup)
		wantInstrs := int64(origInstrs) + res.Stats.DynInstrDelta
		if int64(gotInstrs) != wantInstrs {
			t.Errorf("%s/%v: aligned instrs = %d, want orig %d + delta %d = %d",
				opts.Algorithm, opts.Model, gotInstrs, origInstrs, res.Stats.DynInstrDelta, wantInstrs)
		}
		if res.Prof.Instrs != uint64(wantInstrs) {
			t.Errorf("%s: transferred profile instrs = %d, want %d",
				opts.Algorithm, res.Prof.Instrs, wantInstrs)
		}
	}
}

func TestTransferredProfileMatchesReprofiling(t *testing.T) {
	prog, err := asm.Assemble(sortSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pf := profileByVM(t, prog, sortSetup)
	for _, opts := range allAlgorithms() {
		res, err := AlignProgram(prog, pf, opts)
		if err != nil {
			t.Fatalf("%s: %v", opts.Algorithm, err)
		}
		fresh := profileByVM(t, res.Prog, sortSetup)
		for name, want := range fresh.Procs {
			got, ok := res.Prof.Procs[name]
			if !ok {
				t.Fatalf("%s: transferred profile missing proc %q", opts.Algorithm, name)
			}
			for e, w := range want.Edges {
				if got.Edges[e] != w {
					t.Errorf("%s/%v: proc %s edge %v: transferred %d, reprofiled %d",
						opts.Algorithm, opts.Model, name, e, got.Edges[e], w)
				}
			}
			for b, c := range want.Branches {
				if got.Branches[b] != c {
					t.Errorf("%s/%v: proc %s branch %d: transferred %+v, reprofiled %+v",
						opts.Algorithm, opts.Model, name, b, got.Branches[b], c)
				}
			}
		}
	}
}

func TestAlignmentIncreasesFallthroughRate(t *testing.T) {
	prog, err := asm.Assemble(sortSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pf := profileByVM(t, prog, sortSetup)

	fallRate := func(p *ir.Program, f *profile.Profile) float64 {
		var taken, fall uint64
		for _, pp := range f.Procs {
			for _, c := range pp.Branches {
				taken += c.Taken
				fall += c.Fall
			}
		}
		if taken+fall == 0 {
			return 0
		}
		return float64(fall) / float64(taken+fall)
	}

	before := fallRate(prog, pf)
	res, err := AlignProgram(prog, pf, Options{Algorithm: AlgoTryN, Model: cost.FallthroughModel{}, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	after := fallRate(res.Prog, res.Prof)
	if after <= before {
		t.Errorf("fall-through rate did not improve: before %.3f after %.3f", before, after)
	}
}

func TestGreedyLinksHottestEdge(t *testing.T) {
	// b0 cond-> b2(hot) / fall b1(cold); b1: br b3; b2: br b3; b3 halt.
	src := `
proc main
    li r1, 1
    bnez r1, hot
cold:
    br join
hot:
    br join
join:
    halt
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	pf := profile.New("x")
	pp := pf.Proc("main")
	pp.Edges[profile.Edge{From: 0, To: 2}] = 90 // taken to hot
	pp.Edges[profile.Edge{From: 0, To: 1}] = 10
	pp.Edges[profile.Edge{From: 2, To: 3}] = 90
	pp.Edges[profile.Edge{From: 1, To: 3}] = 10
	pp.Branches[0] = profile.BranchCount{Taken: 90, Fall: 10}

	res, err := AlignProgram(prog, pf, Options{Algorithm: AlgoGreedy})
	if err != nil {
		t.Fatal(err)
	}
	main := res.Prog.Procs[0]
	// Expect layout entry, hot, join, ... with the branch inverted so hot is
	// the fall-through, and hot's jump to join removed.
	if main.Blocks[1].Orig != 2 {
		t.Errorf("block after entry has Orig %d, want 2 (hot)", main.Blocks[1].Orig)
	}
	term, _ := main.Blocks[0].Terminator()
	if term.Op != ir.OpBeqz {
		t.Errorf("entry terminator = %v, want inverted beqz", term.Op)
	}
	if res.Stats.BranchesInverted != 1 {
		t.Errorf("BranchesInverted = %d, want 1", res.Stats.BranchesInverted)
	}
	if res.Stats.JumpsRemoved == 0 {
		t.Error("expected hot's jump to join to be removed")
	}
}

func TestCostPrefersLoopTrickOnFallthroughArch(t *testing.T) {
	// Hot single-block self loop (Figure 2 shape): under FALLTHROUGH the
	// Cost algorithm must invert the loop conditional and add a jump.
	src := `
proc main
    li r1, 1000
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil)

	res, err := AlignProgram(prog, pf, Options{Algorithm: AlgoCost, Model: cost.FallthroughModel{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.JumpsInserted == 0 || res.Stats.BranchesInverted == 0 {
		t.Errorf("loop trick not applied: %+v", res.Stats)
	}
	// Semantics preserved.
	wantRegs, _, _ := runVM(t, prog, nil)
	gotRegs, _, _ := runVM(t, res.Prog, nil)
	if gotRegs[1] != wantRegs[1] {
		t.Errorf("r1 = %d, want %d", gotRegs[1], wantRegs[1])
	}
	// Cost under the model must improve.
	before := cost.ProgramCost(prog, pf, cost.FallthroughModel{})
	after := cost.ProgramCost(res.Prog, res.Prof, cost.FallthroughModel{})
	if after >= before {
		t.Errorf("loop trick did not reduce model cost: %.0f -> %.0f", before, after)
	}
	// Under BT/FNT the backward loop branch is already predicted: the trick
	// must NOT fire.
	res2, err := AlignProgram(prog, pf, Options{Algorithm: AlgoCost, Model: cost.BTFNTModel{}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.JumpsInserted != 0 {
		t.Errorf("BT/FNT alignment inserted %d jumps; loop trick should not fire", res2.Stats.JumpsInserted)
	}
}

// figure3Program reproduces the paper's Figure 3: a loop A->B->C->A where A
// conditionally exits to D, entered at A, with the unconditional C->A back
// branch. Weights: entry->A 1, A->D 1, A->B 8999, B->C 9000, C->A 9000.
func figure3Program(t *testing.T) (*ir.Program, *profile.Profile) {
	t.Helper()
	src := `
proc main
entry:
    li r1, 9000
a:
    addi r1, r1, -1
    beqz r1, d
b:
    nop
c:
    nop
    br a
d:
    halt
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil)
	return prog, pf
}

func TestTryNBeatsGreedyOnFigure3(t *testing.T) {
	prog, pf := figure3Program(t)
	m := cost.BTFNTModel{}

	greedy, err := AlignProgram(prog, pf, Options{Algorithm: AlgoGreedy, Order: OrderBTFNT})
	if err != nil {
		t.Fatal(err)
	}
	tryn, err := AlignProgram(prog, pf, Options{Algorithm: AlgoTryN, Model: m, Window: 8, Order: OrderBTFNT})
	if err != nil {
		t.Fatal(err)
	}
	gc := cost.ProgramCost(greedy.Prog, greedy.Prof, m)
	tc := cost.ProgramCost(tryn.Prog, tryn.Prof, m)
	oc := cost.ProgramCost(prog, pf, m)
	if tc > gc {
		t.Errorf("TryN cost %.0f worse than Greedy %.0f (orig %.0f)", tc, gc, oc)
	}
	if tc >= oc {
		t.Errorf("TryN cost %.0f did not improve on original %.0f", tc, oc)
	}
	// Semantics.
	wantRegs, _, _ := runVM(t, prog, nil)
	gotRegs, _, _ := runVM(t, tryn.Prog, nil)
	if gotRegs[1] != wantRegs[1] {
		t.Errorf("r1 = %d, want %d", gotRegs[1], wantRegs[1])
	}
}

func TestAlignProgramOriginalIsIdentity(t *testing.T) {
	prog, err := asm.Assemble(sortSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, sortSetup)
	res, err := AlignProgram(prog, pf, Options{Algorithm: AlgoOriginal})
	if err != nil {
		t.Fatal(err)
	}
	if res.Prog.Format() != prog.Format() {
		t.Error("AlgoOriginal changed the program")
	}
	if res.Stats != (RewriteStats{}) {
		t.Errorf("AlgoOriginal stats = %+v, want zero", res.Stats)
	}
}

func TestAlignProgramErrors(t *testing.T) {
	prog, err := asm.Assemble("proc main\n halt\nendproc")
	if err != nil {
		t.Fatal(err)
	}
	pf := profile.New("x")
	pf.Proc("main")
	if _, err := AlignProgram(prog, pf, Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm should error")
	}
	if _, err := AlignProgram(prog, pf, Options{Algorithm: AlgoCost}); err == nil {
		t.Error("AlgoCost without model should error")
	}
	if _, err := AlignProgram(prog, pf, Options{Algorithm: AlgoTryN}); err == nil {
		t.Error("AlgoTryN without model should error")
	}
}

func TestRewriteLayoutValidation(t *testing.T) {
	prog, err := asm.Assemble("proc main\n li r1, 1\n halt\nendproc")
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
	pp := profile.NewProcProfile()
	prog2, err := asm.Assemble("proc main\n li r1, 1\n br x\nx:\n halt\nendproc")
	if err != nil {
		t.Fatal(err)
	}
	p2 := prog2.Procs[0]
	if _, _, _, err := rewriteProc(p2, pp, []ir.BlockID{0}, nil, nil); err == nil {
		t.Error("short layout should error")
	}
	if _, _, _, err := rewriteProc(p2, pp, []ir.BlockID{0, 0}, nil, nil); err == nil {
		t.Error("non-permutation layout should error")
	}
	if _, _, _, err := rewriteProc(p2, pp, []ir.BlockID{1, 0}, nil, nil); err == nil {
		t.Error("layout not starting at entry should error")
	}
}

func TestOrderChainsEntryFirstAndDeterministic(t *testing.T) {
	prog, err := asm.Assemble(sortSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, sortSetup)
	p := prog.Procs[0]
	pp := pf.Procs["main"]

	for _, ord := range []ChainOrder{OrderHottest, OrderBTFNT} {
		var prev []ir.BlockID
		for rep := 0; rep < 3; rep++ {
			c := newChains(p)
			for _, e := range alignableEdges(p, pp.Weight, 1) {
				if c.canLink(e.from, e.to) {
					c.link(e.from, e.to)
				}
			}
			layout := orderChains(c, pp, ord)
			if layout[0] != p.Entry() {
				t.Fatalf("%v: layout starts at %d, want entry", ord, layout[0])
			}
			if len(layout) != len(p.Blocks) {
				t.Fatalf("%v: layout has %d blocks, want %d", ord, len(layout), len(p.Blocks))
			}
			if rep > 0 {
				for i := range layout {
					if layout[i] != prev[i] {
						t.Fatalf("%v: non-deterministic layout: %v vs %v", ord, layout, prev)
					}
				}
			}
			prev = layout
		}
	}
}

func TestChainOrderString(t *testing.T) {
	if OrderHottest.String() != "hottest-first" || OrderBTFNT.String() != "btfnt-precedence" {
		t.Error("ChainOrder names wrong")
	}
}
