package core

import (
	"math/rand"
	"strings"
	"testing"

	"balign/internal/asm"
	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/workload"
)

// indirectCallProgram builds a raw program whose call target cannot be
// remapped. It deliberately bypasses Validate (which also rejects these):
// the reorder entry points must fail descriptively on their own rather
// than silently skipping the call site as they once did.
func rawCallProgram(target int) *ir.Program {
	main := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpCall, TargetProc: target},
			{Op: ir.OpHalt},
		}},
	}}
	f := &ir.Proc{Name: "f", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpRet}}},
	}}
	prog := &ir.Program{Name: "raw", Procs: []*ir.Proc{main, f}, MemWords: 4}
	prog.AssignAddresses(0x1000)
	return prog
}

func TestReorderProcsRejectsIndirectCall(t *testing.T) {
	prog := rawCallProgram(-1)
	pf := profile.New("raw")
	for name, want := range map[string]func() error{
		"ReorderProcs":       func() error { _, err := ReorderProcs(prog, pf); return err },
		"ReorderProcsExtTSP": func() error { _, err := ReorderProcsExtTSP(prog, pf); return err },
	} {
		err := want()
		if err == nil {
			t.Fatalf("%s accepted an indirect call", name)
		}
		if !strings.Contains(err.Error(), "indirect call") {
			t.Errorf("%s error %q does not describe the indirect call", name, err)
		}
	}
}

func TestReorderProcsRejectsOutOfRangeCall(t *testing.T) {
	prog := rawCallProgram(7)
	pf := profile.New("raw")
	for name, want := range map[string]func() error{
		"ReorderProcs":       func() error { _, err := ReorderProcs(prog, pf); return err },
		"ReorderProcsExtTSP": func() error { _, err := ReorderProcsExtTSP(prog, pf); return err },
	} {
		err := want()
		if err == nil {
			t.Fatalf("%s accepted an out-of-range call target", name)
		}
		if !strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s error %q does not describe the out-of-range target", name, err)
		}
	}
}

// entryChainSrc invokes a 100 times from a loop; a and b each call their
// only callee from their entry block, so the invocation counts of b and c
// are invisible to intraprocedural edge weights (an entry block has no
// incoming edge). d is a decoy invoked only 10 times.
const entryChainSrc = `
mem 16
proc main
    li r1, 100
ml:
    call a
    addi r1, r1, -1
    bnez r1, ml
    li r2, 10
dl:
    call d
    addi r2, r2, -1
    bnez r2, dl
    halt
endproc
proc a
    call b
    ret
endproc
proc b
    call c
    ret
endproc
proc c
    addi r3, r3, 1
    ret
endproc
proc d
    addi r4, r4, 1
    ret
endproc
`

// TestEntryCountProcOrderRegression is the profile bugfix's regression
// test: with only relative edge weights (no EntryCount), the invocation
// count of a procedure whose callers call from entry blocks bottoms out at
// the bootstrap floor — here c (invoked 100 times, two entry-block hops
// from the loop) ranks below the decoy d (invoked 10 times), so
// hottest-first procedure ordering provably picks the worse layout. The
// absolute entry counts fix the ranking.
func TestEntryCountProcOrderRegression(t *testing.T) {
	prog, err := asm.Assemble(entryChainSrc)
	if err != nil {
		t.Fatal(err)
	}
	pf := profileByVM(t, prog, nil) // collected profiles carry no EntryCount

	hot := ProcHotness(prog, pf)
	c, d := prog.ProcByName("c"), prog.ProcByName("d")
	if hot[c] >= hot[d] {
		t.Fatalf("precondition lost: relative weights should under-count c (c=%d d=%d)", hot[c], hot[d])
	}
	old, err := ReorderProcs(prog, pf)
	if err != nil {
		t.Fatal(err)
	}
	if old.ProcByName("c") < old.ProcByName("d") {
		t.Fatalf("precondition lost: old relative weights should order decoy d before c")
	}

	// The true invocation counts, as an entry-aware collector would record.
	for name, n := range map[string]uint64{"main": 1, "a": 100, "b": 100, "c": 100, "d": 10} {
		pf.Proc(name).EntryCount = n
	}
	hot = ProcHotness(prog, pf)
	if hot[c] != 100 {
		t.Errorf("entry-aware hotness of c = %d, want 100", hot[c])
	}
	fixed, err := ReorderProcs(prog, pf)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.ProcByName("c") > fixed.ProcByName("d") {
		t.Errorf("entry-aware ordering still places 100x-invoked c after 10x decoy d")
	}
}

// randomTSPInstance builds a deterministic random layout instance: block
// sizes and a sparse weighted digraph.
func randomTSPInstance(rng *rand.Rand, n int) (sizes []uint64, edges []tspEdge) {
	sizes = make([]uint64, n)
	for i := range sizes {
		sizes[i] = uint64(1+rng.Intn(16)) * ir.InstrBytes
	}
	for i := 0; i < 3*n; i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from == to {
			continue
		}
		edges = append(edges, tspEdge{from: from, to: to, weight: uint64(1 + rng.Intn(1_000_000))})
	}
	return sizes, edges
}

// TestExtTSPRelabelInvariance is the metamorphic block-ID permutation
// property: relabelling the nodes of a layout instance (the abstraction a
// procedure's blocks reach the optimizer through) must not change the
// chosen layout's score. Random weights make exact merge-gain ties — the
// only way the greedy trajectory could legitimately diverge — vanishingly
// unlikely, so score equality is exact up to float association.
func TestExtTSPRelabelInvariance(t *testing.T) {
	params := blockTSPParams()
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 4 + rng.Intn(40)
		sizes, edges := randomTSPInstance(rng, n)
		pin := rng.Intn(n)

		perm := rng.Perm(n) // old -> new
		psizes := make([]uint64, n)
		for i, sz := range sizes {
			psizes[perm[i]] = sz
		}
		pedges := make([]tspEdge, len(edges))
		for i, e := range edges {
			pedges[i] = tspEdge{from: perm[e.from], to: perm[e.to], weight: e.weight}
		}

		base := extTSPScoreOrder(sizes, edges, extTSPOrder(sizes, edges, pin, params), params)
		relab := extTSPScoreOrder(psizes, pedges, extTSPOrder(psizes, pedges, perm[pin], params), params)
		if diff := base - relab; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("trial %d: relabelled instance scored %.9f, original %.9f", trial, relab, base)
		}
	}
}

// TestExtTSPRenameInvariance: procedure names feed nothing but profile
// keying, so renaming every procedure must reproduce the same layouts and
// the same objective score.
func TestExtTSPRenameInvariance(t *testing.T) {
	w, err := workload.ByName("espresso", workload.Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pf, _, err := w.CollectProfile()
	if err != nil {
		t.Fatal(err)
	}

	renamedProg := w.Prog.Clone()
	for _, p := range renamedProg.Procs {
		p.Name = "x_" + p.Name
	}
	renamedPf := profile.New(pf.Program)
	renamedPf.Instrs = pf.Instrs
	for name, pp := range pf.Procs {
		renamedPf.Procs["x_"+name] = pp
	}

	base, err := AlignProgram(w.Prog, pf, Options{Algorithm: AlgoExtTSP})
	if err != nil {
		t.Fatal(err)
	}
	ren, err := AlignProgram(renamedProg, renamedPf, Options{Algorithm: AlgoExtTSP})
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range base.Prog.Procs {
		rp := ren.Prog.Procs[pi]
		if len(p.Blocks) != len(rp.Blocks) {
			t.Fatalf("proc %s: block count diverged under renaming", p.Name)
		}
		for bi, b := range p.Blocks {
			if b.Orig != rp.Blocks[bi].Orig {
				t.Fatalf("proc %s block %d: layout diverged under renaming (%d vs %d)",
					p.Name, bi, b.Orig, rp.Blocks[bi].Orig)
			}
		}
		var bs, rs float64
		if pp := base.Prof.Procs[p.Name]; pp != nil {
			bs = ExtTSPScore(p, pp)
		}
		if pp := ren.Prof.Procs[rp.Name]; pp != nil {
			rs = ExtTSPScore(rp, pp)
		}
		if diff := bs - rs; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("proc %s: score %.6f != renamed score %.6f", p.Name, bs, rs)
		}
	}
}

// TestExtTSPNeverWorsensOwnObjective: the identity-layout guard means the
// chosen order can never score below the original block order.
func TestExtTSPNeverWorsensOwnObjective(t *testing.T) {
	params := blockTSPParams()
	for _, name := range []string{"ora", "compress", "espresso", "doduc", "gcc"} {
		w, err := workload.ByName(name, workload.Config{Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		pf, _, err := w.CollectProfile()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range w.Prog.Procs {
			pp := pf.Procs[p.Name]
			if pp == nil {
				continue
			}
			sizes, edges := procTSPInput(p, pp)
			layout := extTSPLayout(p, pp)
			order := make([]int, len(layout))
			for i, b := range layout {
				order[i] = int(b)
			}
			identity := make([]int, len(sizes))
			for i := range identity {
				identity[i] = i
			}
			chosen := extTSPScoreOrder(sizes, edges, order, params)
			id := extTSPScoreOrder(sizes, edges, identity, params)
			if chosen < id-1e-9 {
				t.Errorf("%s/%s: chosen layout scores %.6f below identity %.6f", name, p.Name, chosen, id)
			}
		}
	}
}

// FuzzExtTSPSemantics: an ExtTSP rewrite of any generated executable
// program must preserve semantics exactly — identical registers and memory
// under VM replay, and a dynamic instruction count matching the rewriter's
// predicted delta.
func FuzzExtTSPSemantics(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		prog, err := asm.Assemble(genProgramSrc(seed))
		if err != nil {
			t.Fatalf("seed %d: generator emitted unassemblable program: %v", seed, err)
		}
		pf := profileByVM(t, prog, nil)
		wantRegs, wantMem, origInstrs := runVM(t, prog, nil)

		res, err := AlignProgram(prog, pf, Options{Algorithm: AlgoExtTSP})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Prog.Validate(); err != nil {
			t.Fatalf("seed %d: aligned program invalid: %v", seed, err)
		}
		gotRegs, gotMem, gotInstrs := runVM(t, res.Prog, nil)
		for r := range wantRegs {
			if gotRegs[r] != wantRegs[r] {
				t.Fatalf("seed %d: r%d = %d, want %d", seed, r, gotRegs[r], wantRegs[r])
			}
		}
		for a := range wantMem {
			if gotMem[a] != wantMem[a] {
				t.Fatalf("seed %d: mem[%d] = %d, want %d", seed, a, gotMem[a], wantMem[a])
			}
		}
		if int64(gotInstrs) != int64(origInstrs)+res.Stats.DynInstrDelta {
			t.Fatalf("seed %d: instr delta mismatch: got %d, orig %d, delta %d",
				seed, gotInstrs, origInstrs, res.Stats.DynInstrDelta)
		}
	})
}
