// Package core implements the paper's contribution: branch alignment.
// Basic blocks of each procedure are threaded into chains — contiguous
// sequences connected by fall-through edges — using one of three algorithms
// (Greedy, Cost, TryN), the chains are ordered, and the procedure is
// rewritten: blocks reordered, branch senses inverted, unconditional jumps
// inserted or removed, all without changing program semantics.
package core

import (
	"sort"

	"balign/internal/ir"
)

// chains tracks the incremental chain structure over a procedure's blocks:
// a union-find partition plus explicit next/prev threading. The zero weight
// entry block is pinned as a chain head so the procedure entry stays first.
type chains struct {
	proc   *ir.Proc
	parent []int32
	size   []int32
	next   []ir.BlockID // chain successor, NoBlock at a chain tail
	prev   []ir.BlockID // chain predecessor, NoBlock at a chain head
}

func newChains(p *ir.Proc) *chains {
	n := len(p.Blocks)
	c := &chains{
		proc:   p,
		parent: make([]int32, n),
		size:   make([]int32, n),
		next:   make([]ir.BlockID, n),
		prev:   make([]ir.BlockID, n),
	}
	for i := 0; i < n; i++ {
		c.parent[i] = int32(i)
		c.size[i] = 1
		c.next[i] = ir.NoBlock
		c.prev[i] = ir.NoBlock
	}
	return c
}

// find returns the union-find root of b, with path compression.
func (c *chains) find(b ir.BlockID) int32 {
	r := int32(b)
	for c.parent[r] != r {
		r = c.parent[r]
	}
	for int32(b) != r {
		b, c.parent[b] = ir.BlockID(c.parent[b]), r
	}
	return r
}

// findNoCompress is find without path compression; used during tentative
// (undoable) evaluation so rollback restores exact state.
func (c *chains) findNoCompress(b ir.BlockID) int32 {
	r := int32(b)
	for c.parent[r] != r {
		r = c.parent[r]
	}
	return r
}

// canLink reports whether d can become the chain (layout) successor of s:
// s must be a chain tail, d a chain head other than the procedure entry, and
// the two must belong to different chains (linking within one chain would
// close a cycle).
func (c *chains) canLink(s, d ir.BlockID) bool {
	if d == c.proc.Entry() {
		return false
	}
	if c.next[s] != ir.NoBlock || c.prev[d] != ir.NoBlock {
		return false
	}
	return c.findNoCompress(s) != c.findNoCompress(d)
}

// link makes d the chain successor of s. Callers must have checked canLink.
func (c *chains) link(s, d ir.BlockID) {
	rs, rd := c.find(s), c.find(d)
	c.next[s] = d
	c.prev[d] = s
	if c.size[rs] >= c.size[rd] {
		c.parent[rd] = rs
		c.size[rs] += c.size[rd]
	} else {
		c.parent[rs] = rd
		c.size[rd] += c.size[rs]
	}
}

// undoRecord captures one tentative link for rollback.
type undoRecord struct {
	s, d         ir.BlockID
	child, root  int32
	oldChildSize int32
}

// tentativeLink performs link without path compression and returns an undo
// record.
func (c *chains) tentativeLink(s, d ir.BlockID) undoRecord {
	rs, rd := c.findNoCompress(s), c.findNoCompress(d)
	c.next[s] = d
	c.prev[d] = s
	var rec undoRecord
	rec.s, rec.d = s, d
	if c.size[rs] >= c.size[rd] {
		rec.child, rec.root = rd, rs
		rec.oldChildSize = c.size[rd]
		c.parent[rd] = rs
		c.size[rs] += c.size[rd]
	} else {
		rec.child, rec.root = rs, rd
		rec.oldChildSize = c.size[rs]
		c.parent[rs] = rd
		c.size[rd] += c.size[rs]
	}
	return rec
}

// undo reverses a tentativeLink. Records must be undone in reverse order of
// application.
func (c *chains) undo(rec undoRecord) {
	c.next[rec.s] = ir.NoBlock
	c.prev[rec.d] = ir.NoBlock
	c.parent[rec.child] = rec.child
	c.size[rec.root] -= rec.oldChildSize
}

// head returns the head block of b's chain by walking prev pointers.
func (c *chains) head(b ir.BlockID) ir.BlockID {
	for c.prev[b] != ir.NoBlock {
		b = c.prev[b]
	}
	return b
}

// chainBlocks returns the blocks of the chain containing b, head to tail.
func (c *chains) chainBlocks(b ir.BlockID) []ir.BlockID {
	var out []ir.BlockID
	for cur := c.head(b); cur != ir.NoBlock; cur = c.next[cur] {
		out = append(out, cur)
	}
	return out
}

// heads returns all chain heads in ascending block-ID order.
func (c *chains) heads() []ir.BlockID {
	var out []ir.BlockID
	for i := range c.prev {
		if c.prev[i] == ir.NoBlock {
			out = append(out, ir.BlockID(i))
		}
	}
	return out
}

// weightedEdge is a candidate alignment edge: an intraprocedural CFG edge a
// chain link could realize, annotated with its profile weight.
type weightedEdge struct {
	from, to ir.BlockID
	kind     ir.EdgeKind
	weight   uint64
}

// alignableEdges lists the procedure's CFG edges eligible for chaining —
// fall-through, conditional-taken and unconditional edges, per the paper's
// restriction to nodes of out-degree one or two (indirect jumps, calls and
// returns are ignored) — sorted by descending weight with deterministic
// tie-breaking. Edges into the entry block are excluded (the entry must
// remain first). minWeight filters cold edges (TryN uses 2: edges executed
// more than once).
func alignableEdges(p *ir.Proc, weight func(from, to ir.BlockID) uint64, minWeight uint64) []weightedEdge {
	var out []weightedEdge
	var scratch []ir.Edge
	entry := p.Entry()
	for id := range p.Blocks {
		scratch = p.OutEdges(ir.BlockID(id), scratch[:0])
		for _, e := range scratch {
			if e.Kind == ir.EdgeIndirect || e.To == entry {
				continue
			}
			w := weight(e.From, e.To)
			if w < minWeight {
				continue
			}
			out = append(out, weightedEdge{from: e.From, to: e.To, kind: e.Kind, weight: w})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].weight != out[j].weight {
			return out[i].weight > out[j].weight
		}
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}
