package core

import (
	"sort"

	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/profile"
)

// tryChoice is one alignment possibility for a node, mirroring the paper:
// single-exit nodes try {fall-through, taken+jump}; conditionals try each
// outgoing edge as the fall-through and also neither.
type tryChoice uint8

const (
	chooseFallF   tryChoice = iota // keep the fall edge as fall-through (cond)
	chooseFallT                    // make the taken edge the fall-through (cond, inverts)
	chooseNeither                  // align neither edge: conditional + jump
	chooseLink                     // single-exit: successor becomes fall-through
	chooseJump                     // single-exit: reach successor by jump
)

// tryNode is a node participating in one TryN window.
type tryNode struct {
	info    *nodeInfo
	model   cost.Model
	choices []tryChoice
	// fallback is the cost charged when a link choice turns out infeasible
	// in the tentative chain state (target already claimed, cycle, ...).
	fallback float64
	// weight orders nodes within the window (hottest first).
	weight uint64
}

// linkTarget returns the chain-link destination of a choice, or NoBlock for
// non-linking choices.
func (n *tryNode) linkTarget(ch tryChoice) ir.BlockID {
	switch ch {
	case chooseFallF:
		return n.info.f
	case chooseFallT:
		return n.info.t
	case chooseLink:
		return n.info.t
	default:
		return ir.NoBlock
	}
}

// tryNLayout implements the paper's Try15 heuristic with a configurable
// window, refined with one round of placement feedback: the paper notes
// that when forming chains "it is not known where the taken branch will be
// located in the final procedure", so a first pass commits a layout, and a
// second pass repeats the search using the first pass's block positions as
// the backward/forward estimates. The second pass can only change decisions
// whose placement guesses were wrong.
func tryNLayout(p *ir.Proc, pp *profile.ProcProfile, opts Options) ([]ir.BlockID, map[ir.BlockID]bool) {
	layout, _ := tryNOnce(p, pp, opts, nil)
	pos := make([]int, len(p.Blocks))
	for i, b := range layout {
		pos[b] = i
	}
	return tryNOnce(p, pp, opts, pos)
}

// tryNOnce is one TryN pass: take the N hottest not-yet-decided edges
// (weight ≥ MinWeight), gather their source nodes, and evaluate every
// combination of the nodes' alignment choices under the cost model,
// committing the cheapest. Nodes that share chains or targets are
// enumerated jointly; independent nodes are optimized separately (an exact
// decomposition that keeps the enumeration tractable). Remaining cold edges
// are linked greedily.
func tryNOnce(p *ir.Proc, pp *profile.ProcProfile, opts Options, posHint []int) ([]ir.BlockID, map[ir.BlockID]bool) {
	m := opts.Model
	c := newChains(p)
	infos := buildNodeInfos(p, pp)
	if posHint != nil {
		for i := range infos {
			infos[i].posHint = posHint
		}
	}
	edges := alignableEdges(p, pp.Weight, opts.minWeight())

	decided := make(map[ir.BlockID]bool)
	forceJump := make(map[ir.BlockID]bool)

	i := 0
	for i < len(edges) {
		// Collect the next window of edges whose sources are undecided.
		var nodes []*tryNode
		nodeSet := make(map[ir.BlockID]*tryNode)
		taken := 0
		for i < len(edges) && taken < opts.window() {
			e := edges[i]
			i++
			if decided[e.from] || !infos[e.from].valid {
				continue
			}
			taken++
			if nodeSet[e.from] != nil {
				continue
			}
			tn := makeTryNode(&infos[e.from], m)
			nodeSet[e.from] = tn
			nodes = append(nodes, tn)
		}
		if len(nodes) == 0 {
			continue
		}
		sort.SliceStable(nodes, func(a, b int) bool {
			if nodes[a].weight != nodes[b].weight {
				return nodes[a].weight > nodes[b].weight
			}
			return nodes[a].info.id < nodes[b].info.id
		})

		for _, cluster := range clusterNodes(c, nodes) {
			commitBest(c, cluster, forceJump, opts.maxCombos())
		}
		for _, n := range nodes {
			decided[n.info.id] = true
		}
	}

	finishLinks(c, p, pp, forceJump)

	// Loop-trick check for conditionals that ended up without a committed
	// fall-through and were not part of any window (cold or skipped).
	for idx := range infos {
		ni := &infos[idx]
		if !ni.valid || !ni.isCond || decided[ni.id] || c.next[ni.id] != ir.NoBlock {
			continue
		}
		if ni.neitherCost(m) < ni.alignCost(m, ni.f) {
			forceJump[ni.id] = true
		}
	}
	return orderChains(c, pp, opts.Order), forceJump
}

// makeTryNode enumerates the node's choices.
func makeTryNode(ni *nodeInfo, m cost.Model) *tryNode {
	tn := &tryNode{info: ni, model: m, weight: ni.wT + ni.wF}
	if ni.isCond {
		tn.fallback = ni.neitherCost(m)
		tn.choices = append(tn.choices, chooseFallF)
		if ni.t != ni.f {
			tn.choices = append(tn.choices, chooseFallT)
		}
		tn.choices = append(tn.choices, chooseNeither)
	} else {
		tn.fallback = ni.jumpCost(m)
		tn.choices = append(tn.choices, chooseLink, chooseJump)
	}
	return tn
}

// choiceCost prices one choice of a node, given the live (tentative) chain
// state so the BT/FNT backward test can see where the taken target landed:
// a taken target threaded earlier in the node's own chain is certainly
// backward; otherwise the original block order is the estimate. This
// chain-aware pricing is what lets TryN discover where to break a loop —
// the capability the paper credits for Try15 beating Greedy and Cost.
func (n *tryNode) choiceCost(c *chains, ch tryChoice, linked bool) float64 {
	ni := n.info
	m := n.model
	switch ch {
	case chooseFallF:
		if !linked {
			return n.fallback
		}
		return m.CondBranch(ni.wF, ni.wT, chainBackward(c, ni, ni.t))
	case chooseFallT:
		if !linked {
			return n.fallback
		}
		return m.CondBranch(ni.wT, ni.wF, chainBackward(c, ni, ni.f))
	case chooseNeither:
		return ni.neitherCost(m)
	case chooseLink:
		if !linked {
			return n.fallback
		}
		return 0
	case chooseJump:
		return ni.jumpCost(m)
	default:
		return n.fallback
	}
}

// chainBackward reports whether target will lie before (or at) the node in
// the final layout: certain when target is threaded earlier in the node's
// own chain; certainly forward when threaded later; otherwise the node's
// dominance/position estimate decides.
func chainBackward(c *chains, ni *nodeInfo, target ir.BlockID) bool {
	src := ni.id
	if src == target {
		return true
	}
	for cur := c.prev[src]; cur != ir.NoBlock; cur = c.prev[cur] {
		if cur == target {
			return true
		}
	}
	// If target is in the same chain but after src, it is certainly forward.
	for cur := c.next[src]; cur != ir.NoBlock; cur = c.next[cur] {
		if cur == target {
			return false
		}
	}
	return ni.backTo(target)
}

// clusterNodes partitions window nodes into groups that can be optimized
// independently: two nodes interact only if their sources or candidate link
// targets currently share a chain or name the same block. Keys are chain
// roots, so disjoint clusters touch disjoint chains and their link
// feasibilities cannot affect each other.
func clusterNodes(c *chains, nodes []*tryNode) [][]*tryNode {
	parent := make([]int, len(nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	keyOwner := make(map[int32]int)
	for idx, n := range nodes {
		keys := []int32{c.findNoCompress(n.info.id)}
		for _, ch := range n.choices {
			if t := n.linkTarget(ch); t != ir.NoBlock {
				keys = append(keys, c.findNoCompress(t))
			}
		}
		for _, k := range keys {
			if prev, ok := keyOwner[k]; ok {
				union(prev, idx)
			} else {
				keyOwner[k] = idx
			}
		}
	}

	groups := make(map[int][]*tryNode)
	var order []int
	for idx, n := range nodes {
		r := find(idx)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], n)
	}
	out := make([][]*tryNode, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// commitBest exhaustively evaluates the choice combinations of one cluster
// against the live chain state (tentatively linking and rolling back) and
// commits the cheapest combination. Clusters whose combination count
// exceeds maxCombos are split into sequential sub-clusters.
func commitBest(c *chains, cluster []*tryNode, forceJump map[ir.BlockID]bool, maxCombos int) {
	for len(cluster) > 0 {
		// Take the longest prefix whose combination count fits the budget.
		n := 0
		combos := 1
		for n < len(cluster) {
			next := combos * len(cluster[n].choices)
			if n > 0 && next > maxCombos {
				break
			}
			combos = next
			n++
		}
		sub := cluster[:n]
		cluster = cluster[n:]

		best := make([]int, len(sub))
		cur := make([]int, len(sub))
		bestCost := evalCombo(c, sub, cur)
		for {
			// Odometer increment.
			k := len(sub) - 1
			for k >= 0 {
				cur[k]++
				if cur[k] < len(sub[k].choices) {
					break
				}
				cur[k] = 0
				k--
			}
			if k < 0 {
				break
			}
			if ccost := evalCombo(c, sub, cur); ccost < bestCost {
				bestCost = ccost
				copy(best, cur)
			}
		}

		// Commit the winning combination for real. A conditional whose
		// winning choice did not materialize as a link (an explicit
		// Neither, or a link that is infeasible — e.g. a self loop) is
		// realized as "align neither edge" whenever that beats the natural
		// fall-through, matching how the evaluation priced it.
		for idx, n := range sub {
			ch := n.choices[best[idx]]
			linked := false
			if t := n.linkTarget(ch); t != ir.NoBlock && t != n.info.id && c.canLink(n.info.id, t) {
				c.link(n.info.id, t)
				linked = true
			}
			if !linked && n.info.isCond &&
				n.info.neitherCost(n.model) < n.info.alignCost(n.model, n.info.f) {
				forceJump[n.info.id] = true
			}
		}
	}
}

// evalCombo prices one choice combination: all of the combination's links
// are tentatively applied first (in node order), then every node is priced
// against the resulting chain state, and the links are rolled back. Link
// choices that are infeasible in the tentative state fall back to the
// node's unaligned cost.
func evalCombo(c *chains, sub []*tryNode, cur []int) float64 {
	var undo []undoRecord
	linked := make([]bool, len(sub))
	for idx, n := range sub {
		t := n.linkTarget(n.choices[cur[idx]])
		if t == ir.NoBlock {
			continue
		}
		if t != n.info.id && c.canLink(n.info.id, t) {
			undo = append(undo, c.tentativeLink(n.info.id, t))
			linked[idx] = true
		}
	}
	total := 0.0
	for idx, n := range sub {
		total += n.choiceCost(c, n.choices[cur[idx]], linked[idx])
	}
	for k := len(undo) - 1; k >= 0; k-- {
		c.undo(undo[k])
	}
	return total
}
