package core

import (
	"math"
	"sort"

	"balign/internal/ir"
	"balign/internal/profile"
)

// This file implements the ExtTSP block-layout algorithm of Newell &
// Pupyrev, "Improved Basic Block Reordering" (see PAPERS.md). Where the
// paper's Greedy/Cost/TryN trio reason about branch direction and
// prediction cost, ExtTSP maximizes a distance-weighted locality objective:
//
//	score(s,t) = w(s,t) * h(d),  d = addr(t) - (addr(s) + size(s))
//	h(0)                    = 1        (fall-through)
//	h(d), 0 < d <= 1024     = 0.1 * (1 - d/1024)   (short forward jump)
//	h(d), -640 <= d < 0     = 0.1 * (1 + d/640)    (short backward jump)
//	h(d) otherwise          = 0        (long jump)
//
// and is optimized by chain merging: every block starts as its own chain,
// and the pair of chains whose merge (including bounded chain-splitting
// arrangements) increases the total score the most is merged until no
// positive-gain merge remains. The engine below is generic over abstract
// nodes (byte sizes + weighted directed edges + a pinned first node) so the
// same optimizer drives both basic-block layout and whole-binary procedure
// ordering (ReorderProcsExtTSP).

// Block-level ExtTSP parameters, from the paper (tuned for a 16-byte fetch
// window / typical branch reach on the authors' hardware; our fixed 4-byte
// instruction encoding keeps the same byte windows meaningful).
const (
	extTSPForwardWindow  = 1024
	extTSPBackwardWindow = 640
	extTSPFallWeight     = 1.0
	extTSPJumpWeight     = 0.01
	// extTSPMaxSplit bounds the chain-splitting enumeration: chains longer
	// than this merge only by concatenation, keeping one merge evaluation
	// O(maxSplit * chain length) as the paper's implementation does.
	extTSPMaxSplit = 64

	// Edge-weight scales. On this pipeline model a non-adjacent conditional
	// successor and a surviving unconditional jump both cost one misfetch
	// per traversal, but the conditional additionally exposes every
	// traversal to dynamic-predictor error (a 4-cycle mispredict), so at
	// equal profile weight the layout should prefer making conditional
	// edges fall through over making jump targets adjacent. The 17:16 bias
	// (6.25%) encodes that preference while still letting a clearly hotter
	// unconditional edge win.
	extTSPCondEdgeScale = 17
	extTSPEdgeScale     = 16
)

// tspEdge is one weighted directed edge between abstract nodes.
type tspEdge struct {
	from, to int
	weight   uint64
}

// tspParams configures the objective's distance windows and weights.
type tspParams struct {
	forwardWindow  uint64
	backwardWindow uint64
	fallWeight     float64
	jumpWeight     float64
	maxSplit       int
	// orderBySlot sequences leftover chains by their smallest original
	// node index instead of weight density: the minimal perturbation of
	// the input order. Procedure ordering uses it — compilers emit
	// procedures in call-tree order, which is already cache-friendly, so
	// chains the optimizer found no affinity between should not be
	// shuffled by hotness.
	orderBySlot bool
}

func blockTSPParams() tspParams {
	return tspParams{
		forwardWindow:  extTSPForwardWindow,
		backwardWindow: extTSPBackwardWindow,
		fallWeight:     extTSPFallWeight,
		jumpWeight:     extTSPJumpWeight,
		maxSplit:       extTSPMaxSplit,
	}
}

// tspChain is one chain of nodes during merging.
type tspChain struct {
	nodes  []int
	size   uint64 // total node bytes
	weight uint64 // total node weight (incoming edge weight), for ordering
	score  float64
	hasPin bool
	dead   bool
}

// tspSolver carries the merge state for one extTSPOrder run.
type tspSolver struct {
	params tspParams
	sizes  []uint64
	adj    [][]tspEdge // out-edges per node, sorted by (from,to)
	pin    int

	chains  []*tspChain
	chainOf []int // node -> live chain index

	// addr/stamp are the scoring scratch: node addresses within the sequence
	// being scored, valid when stamp matches the current epoch.
	addr  []uint64
	stamp []int
	epoch int
}

// edgeScore prices one placed edge: srcEnd is the address just past the
// source node, dst the destination node's address.
func (s *tspSolver) edgeScore(srcEnd, dst uint64, w uint64) float64 {
	if dst >= srcEnd {
		d := dst - srcEnd
		if d == 0 {
			return s.params.fallWeight * float64(w)
		}
		if d <= s.params.forwardWindow {
			return s.params.jumpWeight * float64(w) * (1 - float64(d)/float64(s.params.forwardWindow))
		}
		return 0
	}
	d := srcEnd - dst
	if d <= s.params.backwardWindow {
		return s.params.jumpWeight * float64(w) * (1 - float64(d)/float64(s.params.backwardWindow))
	}
	return 0
}

// scoreSeq scores a contiguous placement of seq, counting only edges with
// both endpoints inside seq (edges that cross chains score 0 until a merge
// places both sides).
func (s *tspSolver) scoreSeq(seq []int) float64 {
	s.epoch++
	var addr uint64
	for _, v := range seq {
		s.addr[v] = addr
		s.stamp[v] = s.epoch
		addr += s.sizes[v]
	}
	var total float64
	for _, v := range seq {
		srcEnd := s.addr[v] + s.sizes[v]
		for _, e := range s.adj[v] {
			if s.stamp[e.to] == s.epoch {
				total += s.edgeScore(srcEnd, s.addr[e.to], e.weight)
			}
		}
	}
	return total
}

// bestMerge evaluates every arrangement of merging b into a — plain
// concatenation plus the bounded chain-splitting variants a1·b·a2, a2·a1·b
// and a2·b·a1 — and returns the best gain over the chains' current scores
// with its sequence. Arrangements that would displace the pinned node from
// the front are skipped. Returns -Inf when no arrangement is legal.
func (s *tspSolver) bestMerge(a, b *tspChain) (float64, []int) {
	base := a.score + b.score
	pinned := a.hasPin || b.hasPin
	bestGain := math.Inf(-1)
	var bestSeq []int
	seq := make([]int, 0, len(a.nodes)+len(b.nodes))
	try := func(parts ...[]int) {
		seq = seq[:0]
		for _, p := range parts {
			seq = append(seq, p...)
		}
		if pinned && seq[0] != s.pin {
			return
		}
		if g := s.scoreSeq(seq) - base; g > bestGain {
			bestGain = g
			bestSeq = append(bestSeq[:0], seq...)
		}
	}
	try(a.nodes, b.nodes)
	if len(a.nodes) <= s.params.maxSplit {
		for i := 1; i < len(a.nodes); i++ {
			a1, a2 := a.nodes[:i], a.nodes[i:]
			try(a1, b.nodes, a2)
			try(a2, a1, b.nodes)
			try(a2, b.nodes, a1)
		}
	}
	return bestGain, bestSeq
}

// pairKey orders a candidate chain pair canonically.
type pairKey struct{ a, b int }

func makePair(x, y int) pairKey {
	if x > y {
		x, y = y, x
	}
	return pairKey{x, y}
}

// candidate caches the best merge of one chain pair.
type candidate struct {
	gain float64
	seq  []int
	// into is the chain index that receives the merged sequence (the pair
	// member whose ordered merge won).
	into, other int
	valid       bool
}

// extTSPOrder lays abstract nodes out to maximize the ExtTSP objective:
// chain merging with bounded splitting, greedy by gain with deterministic
// tie-breaking (first-come pair order on equal gain), leftover chains by
// weight density. pin (-1 for none) is kept first in the returned order.
func extTSPOrder(sizes []uint64, edges []tspEdge, pin int, params tspParams) []int {
	n := len(sizes)
	if n == 0 {
		return nil
	}
	s := &tspSolver{
		params: params,
		sizes:  sizes,
		adj:    make([][]tspEdge, n),
		pin:    pin,
		addr:   make([]uint64, n),
		stamp:  make([]int, n),
	}

	// Aggregate parallel edges and drop self-edges (their score is the same
	// in every layout, so they never influence a merge decision).
	agg := make(map[pairKey]uint64, len(edges))
	nodeWeight := make([]uint64, n)
	for _, e := range edges {
		if e.from < 0 || e.from >= n || e.to < 0 || e.to >= n || e.weight == 0 {
			continue
		}
		nodeWeight[e.to] += e.weight
		if e.from == e.to {
			continue
		}
		agg[pairKey{e.from, e.to}] += e.weight
	}
	aggEdges := make([]tspEdge, 0, len(agg))
	for k, w := range agg {
		aggEdges = append(aggEdges, tspEdge{from: k.a, to: k.b, weight: w})
	}
	sort.Slice(aggEdges, func(i, j int) bool {
		if aggEdges[i].from != aggEdges[j].from {
			return aggEdges[i].from < aggEdges[j].from
		}
		return aggEdges[i].to < aggEdges[j].to
	})
	for _, e := range aggEdges {
		s.adj[e.from] = append(s.adj[e.from], e)
	}

	// Every node starts as its own chain; chain slot == node index, so slot
	// order is the deterministic tie-break everywhere below.
	s.chains = make([]*tspChain, n)
	s.chainOf = make([]int, n)
	for i := 0; i < n; i++ {
		s.chains[i] = &tspChain{
			nodes:  []int{i},
			size:   sizes[i],
			weight: nodeWeight[i],
			hasPin: i == pin,
		}
		s.chainOf[i] = i
	}

	// Candidate pairs: chains connected by at least one edge, in first-seen
	// (sorted-edge) order. pairs holds the stable iteration order; cands the
	// cached evaluations.
	cands := make(map[pairKey]*candidate, len(aggEdges))
	var pairs []pairKey
	addPair := func(x, y int) {
		if x == y {
			return
		}
		k := makePair(x, y)
		if _, ok := cands[k]; !ok {
			cands[k] = &candidate{}
			pairs = append(pairs, k)
		}
	}
	for _, e := range aggEdges {
		addPair(e.from, e.to)
	}

	evaluate := func(k pairKey, c *candidate) {
		a, b := s.chains[k.a], s.chains[k.b]
		gainAB, seqAB := s.bestMerge(a, b)
		gainBA, seqBA := s.bestMerge(b, a)
		if gainAB >= gainBA {
			c.gain, c.seq, c.into, c.other = gainAB, seqAB, k.a, k.b
		} else {
			c.gain, c.seq, c.into, c.other = gainBA, seqBA, k.b, k.a
		}
		c.valid = true
	}

	for {
		var bestKey pairKey
		var best *candidate
		for _, k := range pairs {
			c, ok := cands[k]
			if !ok {
				continue
			}
			if !c.valid {
				evaluate(k, c)
			}
			if best == nil || c.gain > best.gain {
				bestKey, best = k, c
			}
		}
		if best == nil || best.gain <= 0 || len(best.seq) == 0 {
			break
		}
		// Merge best.other into best.into.
		into, other := s.chains[best.into], s.chains[best.other]
		into.nodes = append(into.nodes[:0], best.seq...)
		into.size += other.size
		into.weight += other.weight
		into.score = s.scoreSeq(into.nodes)
		into.hasPin = into.hasPin || other.hasPin
		other.dead = true
		winner, loser := best.into, best.other
		for _, v := range best.seq {
			s.chainOf[v] = winner
		}
		// Retarget pairs that referenced the dead chain and invalidate every
		// cached evaluation involving the merged chain.
		delete(cands, bestKey)
		var kept []pairKey
		seen := make(map[pairKey]bool)
		for _, k := range pairs {
			c, ok := cands[k]
			if !ok {
				continue
			}
			nk := k
			if nk.a == loser {
				nk = makePair(winner, nk.b)
			} else if nk.b == loser {
				nk = makePair(nk.a, winner)
			}
			if nk.a == nk.b {
				delete(cands, k)
				continue
			}
			if nk != k {
				delete(cands, k)
				if _, dup := cands[nk]; dup || seen[nk] {
					continue
				}
				c = &candidate{}
				cands[nk] = c
			} else if nk.a == winner || nk.b == winner {
				c.valid = false
			}
			if !seen[nk] {
				seen[nk] = true
				kept = append(kept, nk)
			}
		}
		pairs = kept
	}

	// Leftover chains: pinned chain first, then by weight density
	// (weight per byte, the paper's ordering for unmerged chains), heavier
	// absolute weight next, smallest slot last for determinism.
	var live []int
	for i, c := range s.chains {
		if !c.dead {
			live = append(live, i)
		}
	}
	minNode := func(c *tspChain) int {
		m := c.nodes[0]
		for _, v := range c.nodes {
			if v < m {
				m = v
			}
		}
		return m
	}
	sort.SliceStable(live, func(x, y int) bool {
		cx, cy := s.chains[live[x]], s.chains[live[y]]
		if cx.hasPin != cy.hasPin {
			return cx.hasPin
		}
		if s.params.orderBySlot {
			return minNode(cx) < minNode(cy)
		}
		dx := float64(cx.weight) / float64(max(cx.size, 1))
		dy := float64(cy.weight) / float64(max(cy.size, 1))
		if dx != dy {
			return dx > dy
		}
		if cx.weight != cy.weight {
			return cx.weight > cy.weight
		}
		return live[x] < live[y]
	})

	out := make([]int, 0, n)
	for _, ci := range live {
		out = append(out, s.chains[ci].nodes...)
	}
	return out
}

// extTSPScoreOrder prices a complete layout (an order over all nodes) under
// the objective — used by the layout guard and by tests.
func extTSPScoreOrder(sizes []uint64, edges []tspEdge, order []int, params tspParams) float64 {
	n := len(sizes)
	s := &tspSolver{
		params: params,
		sizes:  sizes,
		adj:    make([][]tspEdge, n),
		addr:   make([]uint64, n),
		stamp:  make([]int, n),
		pin:    -1,
	}
	agg := make(map[pairKey]uint64, len(edges))
	for _, e := range edges {
		if e.from < 0 || e.from >= n || e.to < 0 || e.to >= n || e.weight == 0 || e.from == e.to {
			continue
		}
		agg[pairKey{e.from, e.to}] += e.weight
	}
	aggEdges := make([]tspEdge, 0, len(agg))
	for k, w := range agg {
		aggEdges = append(aggEdges, tspEdge{from: k.a, to: k.b, weight: w})
	}
	sort.Slice(aggEdges, func(i, j int) bool {
		if aggEdges[i].from != aggEdges[j].from {
			return aggEdges[i].from < aggEdges[j].from
		}
		return aggEdges[i].to < aggEdges[j].to
	})
	for _, e := range aggEdges {
		s.adj[e.from] = append(s.adj[e.from], e)
	}
	return s.scoreSeq(order)
}

// procTSPInput builds the abstract ExtTSP instance of one procedure: block
// byte sizes and the profiled fall-through/taken/unconditional edges
// (indirect jump edges are excluded, as in alignableEdges — their targets
// are data-dependent, so no layout can make them fall through).
func procTSPInput(p *ir.Proc, pp *profile.ProcProfile) (sizes []uint64, edges []tspEdge) {
	sizes = make([]uint64, len(p.Blocks))
	for i, b := range p.Blocks {
		sizes[i] = uint64(len(b.Instrs)) * ir.InstrBytes
	}
	var scratch []ir.Edge
	for id := range p.Blocks {
		scratch = p.OutEdges(ir.BlockID(id), scratch[:0])
		scale := uint64(extTSPEdgeScale)
		if t, ok := p.Blocks[id].Terminator(); ok && t.Kind() == ir.CondBr {
			scale = extTSPCondEdgeScale
		}
		for _, e := range scratch {
			if e.Kind == ir.EdgeIndirect {
				continue
			}
			w := pp.Weight(e.From, e.To)
			if w == 0 {
				continue
			}
			edges = append(edges, tspEdge{from: int(e.From), to: int(e.To), weight: w * scale})
		}
	}
	return sizes, edges
}

// extTSPLayout plans one procedure's block layout by the ExtTSP objective.
// The layout guard keeps the original order when the optimizer's result
// scores below it — realignment must never regress its own objective.
func extTSPLayout(p *ir.Proc, pp *profile.ProcProfile) []ir.BlockID {
	sizes, edges := procTSPInput(p, pp)
	params := blockTSPParams()
	order := extTSPOrder(sizes, edges, int(p.Entry()), params)

	identity := make([]int, len(sizes))
	for i := range identity {
		identity[i] = i
	}
	if extTSPScoreOrder(sizes, edges, order, params) < extTSPScoreOrder(sizes, edges, identity, params) {
		order = identity
	}
	layout := make([]ir.BlockID, len(order))
	for i, v := range order {
		layout[i] = ir.BlockID(v)
	}
	return layout
}

// ExtTSPScore prices a procedure's current block layout under the block
// ExtTSP objective (higher is better) — exported for experiments and tests.
func ExtTSPScore(p *ir.Proc, pp *profile.ProcProfile) float64 {
	sizes, edges := procTSPInput(p, pp)
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	return extTSPScoreOrder(sizes, edges, order, blockTSPParams())
}
