package pipeline

import (
	"testing"

	"balign/internal/ir"
	"balign/internal/trace"
)

func TestCyclesIssueTime(t *testing.T) {
	s := New(DefaultConfig())
	if got := s.Cycles(100); got != 50 {
		t.Errorf("Cycles(100) = %v, want 50 (dual issue, no penalties)", got)
	}
	if got := s.Cycles(101); got != 51 {
		t.Errorf("Cycles(101) = %v, want 51 (ceil)", got)
	}
}

func TestLineBitInitializesBTFNT(t *testing.T) {
	s := New(DefaultConfig())
	// First encounter of a backward taken branch: BT/FNT predicts taken,
	// so only a (squash-discounted) misfetch.
	s.Event(trace.Event{Kind: ir.CondBr, Taken: true, PC: 100, Target: 40, TakenTarget: 40, Fall: 104})
	if s.Mispredicts != 0 || s.Misfetches != 1 {
		t.Errorf("backward first encounter: mp/mf = %d/%d, want 0/1", s.Mispredicts, s.Misfetches)
	}
	// First encounter of a forward taken branch: predicted not taken.
	s.Event(trace.Event{Kind: ir.CondBr, Taken: true, PC: 200, Target: 400, TakenTarget: 400, Fall: 204})
	if s.Mispredicts != 1 {
		t.Errorf("forward taken first encounter: mispredicts = %d, want 1", s.Mispredicts)
	}
	// Second encounter: history bit now set from the last outcome.
	s.Event(trace.Event{Kind: ir.CondBr, Taken: true, PC: 200, Target: 400, TakenTarget: 400, Fall: 204})
	if s.Mispredicts != 1 {
		t.Errorf("history bit not learned: mispredicts = %d, want 1", s.Mispredicts)
	}
}

func TestSquashRateDiscountsMisfetch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SquashRate = 0.30
	s := New(cfg)
	for i := 0; i < 10; i++ {
		s.Event(trace.Event{Kind: ir.Br, Taken: true, PC: 100, Target: 40, Fall: 104})
	}
	want := 10 * 1 * 0.7
	if got := s.PenaltyCycles(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("penalty = %v, want %v", got, want)
	}
}

func TestReturnStackInPipeline(t *testing.T) {
	s := New(DefaultConfig())
	s.Event(trace.Event{Kind: ir.Call, Taken: true, PC: 100, Target: 400, Fall: 104})
	s.Event(trace.Event{Kind: ir.Ret, Taken: true, PC: 440, Target: 104, Fall: 444})
	if s.Mispredicts != 0 {
		t.Errorf("correct return mispredicted")
	}
	s.Event(trace.Event{Kind: ir.Ret, Taken: true, PC: 440, Target: 104, Fall: 444})
	if s.Mispredicts != 1 {
		t.Errorf("empty-stack return: mispredicts = %d, want 1", s.Mispredicts)
	}
}

func TestIJumpAlwaysMispredicts(t *testing.T) {
	s := New(DefaultConfig())
	s.Event(trace.Event{Kind: ir.IJump, Taken: true, PC: 100, Target: 400, Fall: 104})
	if s.Mispredicts != 1 {
		t.Errorf("ijump: mispredicts = %d, want 1", s.Mispredicts)
	}
}

func TestResetClearsState(t *testing.T) {
	s := New(DefaultConfig())
	s.Event(trace.Event{Kind: ir.Br, Taken: true, PC: 100, Target: 40, Fall: 104})
	s.Reset()
	if s.PenaltyCycles() != 0 || s.Events != 0 || s.Misfetches != 0 {
		t.Error("Reset did not clear accumulators")
	}
}

func TestBadLineBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two LineBits did not panic")
		}
	}()
	New(Config{IssueWidth: 2, LineBits: 100})
}
