// Package pipeline implements a simple dual-issue in-order timing model of
// the DEC Alpha AXP 21064 front end, used to reproduce the paper's Figure 4
// (total execution time of aligned vs original programs).
//
// The 21064 predicts conditional branches with a per-instruction history
// bit kept in the instruction cache, initialized from the branch
// displacement sign (i.e. BT/FNT) when a line is (re)filled — the paper
// describes the behaviour as "a cross between a direct mapped PHT table and
// a BT/FNT architecture". The machine issues up to two instructions per
// cycle; a mispredicted break costs about ten instruction slots (five
// cycles); a misfetch costs one fetch cycle, and the paper notes misfetch
// bubbles are frequently squashed behind other stalls — it suggests roughly
// 30% of taken-branch misfetches are hidden.
package pipeline

import (
	"math"

	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/trace"
)

// Config parameterizes the timing model.
type Config struct {
	// IssueWidth is the number of instructions issued per cycle (21064: 2).
	IssueWidth int
	// MispredictCycles is the pipeline refill cost of a mispredicted break.
	MispredictCycles float64
	// MisfetchCycles is the bubble caused by a correctly predicted taken
	// branch or an unconditional break whose target is computed at decode.
	MisfetchCycles float64
	// SquashRate is the fraction of misfetch bubbles hidden behind other
	// stalls (the paper suggests ~30% for the 21064).
	SquashRate float64
	// LineBits is the size of the line-bit branch history table.
	LineBits int
}

// DefaultConfig returns the Alpha AXP 21064-like parameters.
func DefaultConfig() Config {
	return Config{
		IssueWidth:       2,
		MispredictCycles: 5,
		MisfetchCycles:   1,
		SquashRate:       0.30,
		LineBits:         4096,
	}
}

// lineBitPredictor models the 21064's I-cache history bits: one bit per
// instruction slot, initialized from the branch displacement sign on first
// encounter (BT/FNT) and updated with the last outcome thereafter.
type lineBitPredictor struct {
	valid []bool
	bit   []bool
	mask  uint64
}

func newLineBitPredictor(entries int) *lineBitPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("pipeline: line-bit table size must be a power of two")
	}
	return &lineBitPredictor{
		valid: make([]bool, entries),
		bit:   make([]bool, entries),
		mask:  uint64(entries - 1),
	}
}

func (p *lineBitPredictor) predict(ev trace.Event) bool {
	i := (ev.PC / ir.InstrBytes) & p.mask
	if !p.valid[i] {
		return ev.TakenTarget <= ev.PC // BT/FNT initialization
	}
	return p.bit[i]
}

func (p *lineBitPredictor) update(ev trace.Event) {
	i := (ev.PC / ir.InstrBytes) & p.mask
	p.valid[i] = true
	p.bit[i] = ev.Taken
}

// Sim is a trace.Sink accumulating pipeline penalty cycles. Feed it a
// program's event stream, then call Cycles with the executed instruction
// count.
type Sim struct {
	cfg  Config
	pred *lineBitPredictor
	ras  *predict.ReturnStack

	penalty     float64
	Mispredicts uint64
	Misfetches  uint64
	Events      uint64
}

// New returns a pipeline simulator.
func New(cfg Config) *Sim {
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 2
	}
	return &Sim{
		cfg:  cfg,
		pred: newLineBitPredictor(cfg.LineBits),
		ras:  predict.NewReturnStack(predict.ReturnStackDepth),
	}
}

func (s *Sim) misfetch() {
	s.Misfetches++
	s.penalty += s.cfg.MisfetchCycles * (1 - s.cfg.SquashRate)
}

func (s *Sim) mispredict() {
	s.Mispredicts++
	s.penalty += s.cfg.MispredictCycles
}

// Event implements trace.Sink.
func (s *Sim) Event(ev trace.Event) {
	s.Events++
	switch ev.Kind {
	case ir.CondBr:
		pred := s.pred.predict(ev)
		s.pred.update(ev)
		if pred == ev.Taken {
			if ev.Taken {
				s.misfetch()
			}
		} else {
			s.mispredict()
		}
	case ir.Br:
		s.misfetch()
	case ir.Call:
		s.misfetch()
		s.ras.Push(ev.Fall)
	case ir.IJump:
		s.mispredict()
	case ir.Ret:
		pred, ok := s.ras.Pop()
		if !ok || pred != ev.Target {
			s.mispredict()
		}
	}
}

// PenaltyCycles returns the accumulated branch penalty cycles.
func (s *Sim) PenaltyCycles() float64 { return s.penalty }

// Cycles returns the modeled total execution time in cycles for a run that
// executed the given number of instructions: issue time plus branch
// penalties.
func (s *Sim) Cycles(instrs uint64) float64 {
	return math.Ceil(float64(instrs)/float64(s.cfg.IssueWidth)) + s.penalty
}

// Reset clears all state.
func (s *Sim) Reset() {
	s.pred = newLineBitPredictor(s.cfg.LineBits)
	s.ras.Reset()
	s.penalty = 0
	s.Mispredicts, s.Misfetches, s.Events = 0, 0, 0
}
