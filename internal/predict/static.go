package predict

import (
	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
)

// Fallthrough is the FALLTHROUGH static architecture's direction predictor:
// every conditional branch is predicted not taken, so every taken branch is
// mispredicted. No longer realistic on its own, but it is the behaviour of a
// BTB architecture on a BTB miss, and it is the model under which branch
// alignment has the most room to help.
type Fallthrough struct{}

// Predict implements DirectionPredictor.
func (Fallthrough) Predict(trace.Event) bool { return false }

// Update implements DirectionPredictor.
func (Fallthrough) Update(trace.Event) {}

// Name implements DirectionPredictor.
func (Fallthrough) Name() string { return "fallthrough" }

// Reset implements DirectionPredictor.
func (Fallthrough) Reset() {}

// BTFNT is the backward-taken/forward-not-taken static predictor used by the
// HP PA-RISC and the Alpha AXP 21064: a branch whose encoded (taken) target
// precedes it is predicted taken (loops), otherwise not taken. The decision
// depends only on the instruction's displacement sign, never on the
// outcome, so it inspects the event's static TakenTarget.
type BTFNT struct{}

// Predict implements DirectionPredictor.
func (BTFNT) Predict(ev trace.Event) bool { return ev.TakenTarget <= ev.PC }

// Update implements DirectionPredictor.
func (BTFNT) Update(trace.Event) {}

// Name implements DirectionPredictor.
func (BTFNT) Name() string { return "btfnt" }

// Reset implements DirectionPredictor.
func (BTFNT) Reset() {}

// Likely is the LIKELY static architecture: each branch instruction carries
// a compiler-set likely/unlikely hint. As in the paper, the hint is set from
// profile information: the branch is predicted in its majority direction.
// Branch sites absent from the profile predict not taken.
type Likely struct {
	table map[uint64]bool // site PC -> predicted taken
}

// NewLikely builds the per-site hint table for prog from a profile gathered
// on that same program layout (hints are attached to site addresses).
func NewLikely(prog *ir.Program, prof *profile.Profile) *Likely {
	l := &Likely{table: make(map[uint64]bool)}
	for _, p := range prog.Procs {
		pp, ok := prof.Procs[p.Name]
		if !ok {
			continue
		}
		for id, b := range p.Blocks {
			term, ok := b.Terminator()
			if !ok || term.Kind() != ir.CondBr {
				continue
			}
			c := pp.Branches[ir.BlockID(id)]
			if c.Total() == 0 {
				continue
			}
			l.table[b.TermAddr()] = c.Taken > c.Fall
		}
	}
	return l
}

// Predict implements DirectionPredictor.
func (l *Likely) Predict(ev trace.Event) bool { return l.table[ev.PC] }

// Update implements DirectionPredictor.
func (l *Likely) Update(trace.Event) {}

// Name implements DirectionPredictor.
func (l *Likely) Name() string { return "likely" }

// Reset implements DirectionPredictor. The hint table is static state, so
// Reset keeps it.
func (l *Likely) Reset() {}

// Sites returns the number of branch sites with hints (for tests).
func (l *Likely) Sites() int { return len(l.table) }

// NewHeuristicLikely builds LIKELY hint bits from compile-time heuristics
// instead of a profile — the paper's other option for setting the likely
// flag ("compile-time estimates", citing Ball & Larus-style rules), which
// it rejects as much less accurate than profiles. Rules, in order:
//
//   - a backward branch is likely taken (loops);
//   - equality tests against zero or another register are likely NOT taken
//     (pointer/sentinel checks fail rarely);
//   - inequality tests (bne/bnez) are likely taken for the same reason;
//   - everything else defaults to not taken.
//
// The experiments use it to reproduce the paper's remark that profile
// hints are "much more accurate and simple to gather".
func NewHeuristicLikely(prog *ir.Program) *Likely {
	l := &Likely{table: make(map[uint64]bool)}
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			term, ok := b.Terminator()
			if !ok || term.Kind() != ir.CondBr {
				continue
			}
			site := b.TermAddr()
			target := p.Block(term.TargetBlock)
			switch {
			case target != nil && target.Addr <= site:
				l.table[site] = true // backward: loop, likely taken
			case term.Op == ir.OpBne || term.Op == ir.OpBnez:
				l.table[site] = true
			default:
				l.table[site] = false
			}
		}
	}
	return l
}
