// Package predict implements the branch prediction architectures the paper
// evaluates — the static FALLTHROUGH, BT/FNT and LIKELY schemes, direct
// mapped and correlation (gshare) pattern history tables, branch target
// buffers, and a return-address stack — together with trace-driven
// architecture simulators that charge misfetch and mispredict penalties by
// the paper's rules.
package predict

import (
	"fmt"

	"balign/internal/trace"
)

// Default penalties from the paper (§6): a misfetched branch costs one
// cycle, a mispredicted branch four cycles.
const (
	DefaultMisfetchPenalty   = 1
	DefaultMispredictPenalty = 4
)

// DirectionPredictor predicts the outcome of conditional branches. Predict
// must not mutate state; Update is called exactly once per conditional event
// after Predict.
type DirectionPredictor interface {
	// Predict returns true when the branch is predicted taken.
	Predict(ev trace.Event) bool
	// Update trains the predictor with the actual outcome.
	Update(ev trace.Event)
	// Name identifies the predictor.
	Name() string
	// Reset restores the initial state.
	Reset()
}

// Result accumulates the outcome of simulating one trace on one
// architecture.
type Result struct {
	// Events is the total number of break events processed.
	Events uint64
	// Misfetches and Mispredicts count penalty events.
	Misfetches  uint64
	Mispredicts uint64

	// Conditional branch accounting.
	Cond        uint64
	CondTaken   uint64
	CondCorrect uint64

	// Return accounting.
	Rets        uint64
	RetsCorrect uint64

	// ByKind counts events by break kind.
	ByKind [8]uint64
}

// Merge adds other's tallies into r. Every field is a plain sum, so Merge
// is exact, commutative and associative: merging the results of disjoint
// segments of one event stream — in any order — reproduces the tallies of
// simulating the whole stream, provided each segment was simulated from the
// predictor state the unsharded run had at the segment's start (the
// state-forwarding contract kernel.ForwardBatch maintains). This is what
// lets the streaming pipeline shard one variant's stream across workers and
// reduce deterministically.
func (r *Result) Merge(other Result) {
	r.Events += other.Events
	r.Misfetches += other.Misfetches
	r.Mispredicts += other.Mispredicts
	r.Cond += other.Cond
	r.CondTaken += other.CondTaken
	r.CondCorrect += other.CondCorrect
	r.Rets += other.Rets
	r.RetsCorrect += other.RetsCorrect
	for i := range r.ByKind {
		r.ByKind[i] += other.ByKind[i]
	}
}

// BEP returns the branch execution penalty in cycles: the paper's metric
// combining misfetch and mispredict costs.
func (r Result) BEP(misfetchPenalty, mispredictPenalty uint64) uint64 {
	return r.Misfetches*misfetchPenalty + r.Mispredicts*mispredictPenalty
}

// CondAccuracy returns the fraction of conditional branches predicted
// correctly (0 when none were seen).
func (r Result) CondAccuracy() float64 {
	if r.Cond == 0 {
		return 0
	}
	return float64(r.CondCorrect) / float64(r.Cond)
}

// Simulator processes a control-transfer event stream and accumulates a
// Result. Implementations are trace.Sinks so they can be attached directly
// to the VM or walker.
type Simulator interface {
	trace.Sink
	Result() Result
	Reset()
	Name() string
}

// Counter2 is a 2-bit saturating up/down counter, the building block of the
// PHT and BTB predictors.
type Counter2 uint8

// Counter2Init is the weakly-not-taken initial counter state.
const Counter2Init Counter2 = 1

// Taken reports whether the counter currently predicts taken.
func (c Counter2) Taken() bool { return c >= 2 }

// Update moves the counter toward the outcome, saturating at 0 and 3.
func (c Counter2) Update(taken bool) Counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

func checkPow2(n int, what string) {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("predict: %s must be a positive power of two, got %d", what, n))
	}
}
