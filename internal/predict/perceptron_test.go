package predict

import "testing"

// tinyPerceptron keeps the tables small enough to saturate in a short test.
var tinyPerceptron = PerceptronConfig{
	TableEntries: 64,
	HistLens:     []uint{0, 3, 7, 15},
	Threshold:    10,
	WeightMin:    -16,
	WeightMax:    15,
}

// TestPerceptronLearnsBiasAndHistory checks the two regimes: a strongly
// biased branch trains the bias table to perfect prediction, and an
// alternating branch (hopeless for any history-free counter) is linearly
// separable on the last outcome, so the history tables learn it exactly.
func TestPerceptronLearnsBiasAndHistory(t *testing.T) {
	p := NewHashedPerceptron(tinyPerceptron)
	if acc := patternAccuracy(p, 3, []uint8{1}, 100); acc != 1.0 {
		t.Errorf("accuracy on always-taken = %v, want 1.0", acc)
	}
	p.Reset()
	if acc := patternAccuracy(p, 3, []uint8{0}, 100); acc != 1.0 {
		t.Errorf("accuracy on never-taken = %v, want 1.0", acc)
	}
	p.Reset()
	if acc := patternAccuracy(p, 3, []uint8{1, 0}, 200); acc != 1.0 {
		t.Errorf("accuracy on alternating pattern = %v, want 1.0", acc)
	}
}

// TestPerceptronWeightsSaturate checks training clamps weights to the
// configured bounds instead of wrapping.
func TestPerceptronWeightsSaturate(t *testing.T) {
	p := NewHashedPerceptron(tinyPerceptron)
	for i := 0; i < 1000; i++ {
		p.UpdateBit(5, 1)
	}
	for i, tbl := range p.weights {
		for j, w := range tbl {
			if w < tinyPerceptron.WeightMin || w > tinyPerceptron.WeightMax {
				t.Fatalf("weights[%d][%d] = %d escaped bounds [%d,%d]",
					i, j, w, tinyPerceptron.WeightMin, tinyPerceptron.WeightMax)
			}
		}
	}
	if p.PredictBit(5) != 1 {
		t.Error("saturated always-taken branch predicted not-taken")
	}
}

// TestPerceptronPredictIsPure checks PredictBit mutates nothing, exactly as
// the TAGE purity test does — the property ForwardBatch parity rests on.
func TestPerceptronPredictIsPure(t *testing.T) {
	a, b := NewHashedPerceptron(tinyPerceptron), NewHashedPerceptron(tinyPerceptron)
	for i := 0; i < 500; i++ {
		slot, taken := uint64(i*11)%89, uint8(i*i)%2
		a.PredictBit(slot)
		a.PredictBit(slot)
		a.UpdateBit(slot, taken)
		b.UpdateBit(slot, taken)
	}
	for slot := uint64(0); slot < 89; slot++ {
		if a.PredictBit(slot) != b.PredictBit(slot) {
			t.Fatalf("state diverged at slot %d: PredictBit is not pure", slot)
		}
	}
	if a.History() != b.History() {
		t.Fatalf("history diverged: %#x vs %#x", a.History(), b.History())
	}
}

// TestPerceptronResetRestoresInitialState checks a reset predictor replays
// a sequence exactly as a fresh one does.
func TestPerceptronResetRestoresInitialState(t *testing.T) {
	warm := NewHashedPerceptron(tinyPerceptron)
	for i := 0; i < 1000; i++ {
		warm.UpdateBit(uint64(i%31), uint8((i/5)%2))
	}
	warm.Reset()
	fresh := NewHashedPerceptron(tinyPerceptron)
	for i := 0; i < 300; i++ {
		slot, taken := uint64(i*3)%31, uint8(i%5%2)
		if got, want := warm.PredictBit(slot), fresh.PredictBit(slot); got != want {
			t.Fatalf("step %d: reset predictor predicts %d, fresh predicts %d", i, got, want)
		}
		warm.UpdateBit(slot, taken)
		fresh.UpdateBit(slot, taken)
	}
}
