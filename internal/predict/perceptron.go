package predict

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
)

// PerceptronConfig sizes a hashed perceptron predictor: a set of weight
// tables, each indexed by the branch address hashed with a different slice
// of global history (Jiménez's hashed-perceptron family).
type PerceptronConfig struct {
	// TableEntries is each weight table's size (a power of two).
	TableEntries int
	// HistLens are the per-table history lengths; 0 means the table is
	// indexed by the branch address alone (the bias table). Lengths are at
	// most 63 bits.
	HistLens []uint
	// Threshold is the training margin: weights train whenever the
	// prediction was wrong or the output magnitude is at or below it.
	Threshold int32
	// WeightMin/WeightMax are the saturating weight bounds.
	WeightMin, WeightMax int8
}

// DefaultPerceptronConfig is the registered "perceptron" architecture's
// geometry: a bias table plus three history tables over an approximately
// geometric series, 8-bit weights, and the usual ~1.93*h+14 training
// threshold scaled to the table count.
var DefaultPerceptronConfig = PerceptronConfig{
	TableEntries: 1024,
	HistLens:     []uint{0, 7, 15, 31},
	Threshold:    22,
	WeightMin:    -64,
	WeightMax:    63,
}

// HashedPerceptron is a hashed perceptron branch predictor. Like TAGE it is
// one value shared by both executors: the reference simulator drives it
// through the DirectionPredictor methods, the compiled kernel through the
// slot/bit methods, so the two paths cannot diverge. Prediction is the sign
// of the summed selected weights; training is the margin rule (train on a
// mispredict or whenever |sum| <= Threshold) with saturating ±1 steps.
type HashedPerceptron struct {
	cfg     PerceptronConfig
	idxBits uint
	mask    uint64
	weights [][]int8
	ghr     uint64
}

// NewHashedPerceptron builds a hashed perceptron from cfg.
func NewHashedPerceptron(cfg PerceptronConfig) *HashedPerceptron {
	checkPow2(cfg.TableEntries, "perceptron table entries")
	if len(cfg.HistLens) == 0 {
		panic("predict: perceptron needs at least one weight table")
	}
	for _, l := range cfg.HistLens {
		if l > 63 {
			panic(fmt.Sprintf("predict: perceptron history length %d out of [0,63]", l))
		}
	}
	if cfg.Threshold <= 0 {
		panic("predict: perceptron threshold must be positive")
	}
	if cfg.WeightMin >= 0 || cfg.WeightMax <= 0 {
		panic("predict: perceptron weight bounds must straddle zero")
	}
	bits := uint(0)
	for 1<<bits < cfg.TableEntries {
		bits++
	}
	p := &HashedPerceptron{
		cfg:     cfg,
		idxBits: bits,
		mask:    uint64(cfg.TableEntries - 1),
		weights: make([][]int8, len(cfg.HistLens)),
	}
	for i := range p.weights {
		p.weights[i] = make([]int8, cfg.TableEntries)
	}
	return p
}

// index returns weight table i's entry for a site slot under the current
// history.
func (p *HashedPerceptron) index(slot uint64, i int) uint64 {
	l := p.cfg.HistLens[i]
	if l == 0 {
		return (slot ^ slot>>p.idxBits) & p.mask
	}
	return (slot ^ slot>>p.idxBits ^ foldHist(p.ghr, l, p.idxBits) ^ uint64(i)<<1) & p.mask
}

// sum computes the perceptron output for slot: the summed selected weights.
func (p *HashedPerceptron) sum(slot uint64) int32 {
	var s int32
	for i := range p.weights {
		s += int32(p.weights[i][p.index(slot, i)])
	}
	return s
}

// PredictBit returns the predicted direction (1 = taken, the output's sign
// bit) for the site at instruction slot, without mutating any state.
func (p *HashedPerceptron) PredictBit(slot uint64) uint8 {
	if p.sum(slot) >= 0 {
		return 1
	}
	return 0
}

// UpdateBit trains the predictor with the actual outcome of the site at
// slot, recomputing the output from the pre-update state (the margin rule
// needs the magnitude, not just the sign).
func (p *HashedPerceptron) UpdateBit(slot uint64, taken uint8) {
	s := p.sum(slot)
	var pred uint8
	if s >= 0 {
		pred = 1
	}
	if pred != taken || abs32(s) <= p.cfg.Threshold {
		for i := range p.weights {
			idx := p.index(slot, i)
			w := p.weights[i][idx]
			if taken != 0 {
				if w < p.cfg.WeightMax {
					p.weights[i][idx] = w + 1
				}
			} else if w > p.cfg.WeightMin {
				p.weights[i][idx] = w - 1
			}
		}
	}
	p.ghr = p.ghr<<1 | uint64(taken)
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// Predict implements DirectionPredictor.
func (p *HashedPerceptron) Predict(ev trace.Event) bool {
	return p.PredictBit(ev.PC/ir.InstrBytes) != 0
}

// Update implements DirectionPredictor.
func (p *HashedPerceptron) Update(ev trace.Event) {
	var bit uint8
	if ev.Taken {
		bit = 1
	}
	p.UpdateBit(ev.PC/ir.InstrBytes, bit)
}

// Name implements DirectionPredictor.
func (p *HashedPerceptron) Name() string {
	return fmt.Sprintf("perceptron-%dx%d", len(p.cfg.HistLens), p.cfg.TableEntries)
}

// History returns the global history register (for tests).
func (p *HashedPerceptron) History() uint64 { return p.ghr }

// Reset implements DirectionPredictor: all weights and history to zero
// (zero weights sum to zero, which predicts taken — the sign convention's
// neutral start).
func (p *HashedPerceptron) Reset() {
	p.ghr = 0
	for i := range p.weights {
		for j := range p.weights[i] {
			p.weights[i][j] = 0
		}
	}
}

// ArchPerceptron is the extension hashed-perceptron architecture
// (DefaultPerceptronConfig geometry).
const ArchPerceptron ArchID = "perceptron"

func init() {
	spec := KernelSpec{Kind: KernelPerceptron, Perceptron: DefaultPerceptronConfig}
	Register(Desc{
		ID: ArchPerceptron, Class: ClassTagged, Grid: GridExtension, Order: 2,
		CostGroup: CostTagged,
		Kernel:    spec,
		New: func(*ir.Program, *profile.Profile) (Simulator, error) {
			return NewStaticSim(NewHashedPerceptron(spec.Perceptron)), nil
		},
	})
}
