package predict

import (
	"fmt"
	"sort"

	"balign/internal/ir"
	"balign/internal/profile"
)

// Class is the hardware family of an architecture: the coarse discriminant
// the documentation and reports group by.
type Class uint8

const (
	// ClassStatic architectures predict every conditional with a fixed
	// per-site direction bit (FALLTHROUGH, BT/FNT, LIKELY).
	ClassStatic Class = iota
	// ClassPHT architectures train pattern-history-table counters
	// (direct-mapped, gshare, PAg).
	ClassPHT
	// ClassBTB architectures predict through a branch target buffer.
	ClassBTB
	// ClassTagged architectures are the modern history-based predictors
	// (TAGE, hashed perceptron).
	ClassTagged
)

// String returns the class's report label.
func (c Class) String() string {
	switch c {
	case ClassStatic:
		return "static"
	case ClassPHT:
		return "pht"
	case ClassBTB:
		return "btb"
	case ClassTagged:
		return "tagged"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Grid says which evaluation grid an architecture belongs to. Every
// registered architecture is a member of exactly one grid; the registry
// enforces it and the completeness tests pin it.
type Grid uint8

const (
	// GridStatic is the paper's Table 3 (static architectures).
	GridStatic Grid = iota
	// GridDynamic is the paper's Table 4 (dynamic architectures).
	GridDynamic
	// GridExtension holds architectures beyond the paper's tables.
	GridExtension
)

// String returns the grid's report label.
func (g Grid) String() string {
	switch g {
	case GridStatic:
		return "static"
	case GridDynamic:
		return "dynamic"
	case GridExtension:
		return "extension"
	}
	return fmt.Sprintf("grid(%d)", uint8(g))
}

// CostGroup keys an architecture's alignment cost model (cost.ForArch maps
// each group to one Model) and groups the architectures that share one
// model-guided alignment variant — the paper aligns once per model, not
// once per architecture, so both PHTs share a layout and both BTBs do.
type CostGroup string

const (
	CostFallthrough CostGroup = "fallthrough"
	CostBTFNT       CostGroup = "btfnt"
	CostLikely      CostGroup = "likely"
	CostPHT         CostGroup = "pht"
	CostBTB         CostGroup = "btb"
	CostTagged      CostGroup = "tagged"
)

// KernelKind names the compiled kernel's devirtualized inner-loop shape for
// an architecture. internal/kernel maps each kind to its specialized batch
// loop; the rest of the compiled state (table geometry, predictor configs)
// comes from the KernelSpec carrying the kind.
type KernelKind uint8

const (
	KernelFallthrough KernelKind = iota
	KernelBTFNT
	KernelLikely
	KernelPHTDirect
	KernelPHTGshare
	KernelPHTLocal
	KernelBTB
	KernelTAGE
	KernelPerceptron
)

// KernelSpec is the declarative half of an architecture's compiled-kernel
// builder: everything internal/kernel needs to materialize the flat
// predictor state. Adding a new geometry of an existing kind (say a larger
// BTB) is a registry entry, not a kernel change.
type KernelSpec struct {
	Kind KernelKind

	// PHTEntries sizes the 2-bit counter table of the PHT kinds.
	PHTEntries int
	// LocalHistEntries sizes the per-branch history table of KernelPHTLocal.
	LocalHistEntries int

	// BTBEntries/BTBWays are the KernelBTB geometry.
	BTBEntries int
	BTBWays    int

	// TAGE configures a KernelTAGE predictor.
	TAGE TAGEConfig
	// Perceptron configures a KernelPerceptron predictor.
	Perceptron PerceptronConfig
}

// Desc is one architecture's registry entry: the single place its class,
// grid membership, paper order, cost-model rules, reference-simulator
// constructor and compiled-kernel spec live. predict, kernel, cost,
// experiments, serve and the CLIs all derive their architecture lists and
// dispatch from these descriptors.
type Desc struct {
	ID    ArchID
	Class Class
	Grid  Grid
	// Order is the architecture's position within its grid (paper order
	// for the paper grids); the list functions sort by (Grid, Order).
	Order int
	// CostGroup selects the alignment cost model and the shared
	// model-guided alignment variant.
	CostGroup CostGroup
	// New constructs the reference simulator. The LIKELY architecture
	// needs the program and its profile; other architectures ignore both.
	New func(prog *ir.Program, prof *profile.Profile) (Simulator, error)
	// Kernel describes the compiled form for internal/kernel.
	Kernel KernelSpec
}

var registry = make(map[ArchID]*Desc)

// Register adds an architecture descriptor. It panics on a duplicate ID, a
// nil constructor, or a duplicate (Grid, Order) slot — registration happens
// at init time, so any of these is a programming error, not input.
func Register(d Desc) {
	if d.ID == "" {
		panic("predict: Register with empty ArchID")
	}
	if d.New == nil {
		panic(fmt.Sprintf("predict: Register(%s) with nil constructor", d.ID))
	}
	if _, dup := registry[d.ID]; dup {
		panic(fmt.Sprintf("predict: duplicate architecture %q", d.ID))
	}
	for _, other := range registry {
		if other.Grid == d.Grid && other.Order == d.Order {
			panic(fmt.Sprintf("predict: %q and %q share grid slot (%v, %d)",
				other.ID, d.ID, d.Grid, d.Order))
		}
	}
	dd := d
	registry[d.ID] = &dd
}

// Lookup returns the descriptor registered for id.
func Lookup(id ArchID) (Desc, bool) {
	d, ok := registry[id]
	if !ok {
		return Desc{}, false
	}
	return *d, true
}

// Registered returns every descriptor in canonical order (grid, then
// within-grid order).
func Registered() []Desc {
	out := make([]Desc, 0, len(registry))
	for _, d := range registry {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Grid != out[j].Grid {
			return out[i].Grid < out[j].Grid
		}
		return out[i].Order < out[j].Order
	})
	return out
}

// archsInGrid lists one grid's architectures in paper order.
func archsInGrid(g Grid) []ArchID {
	var out []ArchID
	for _, d := range Registered() {
		if d.Grid == g {
			out = append(out, d.ID)
		}
	}
	return out
}

// StaticArchs lists the static architectures (Table 3) in paper order.
func StaticArchs() []ArchID { return archsInGrid(GridStatic) }

// DynamicArchs lists the dynamic architectures (Table 4) in paper order.
func DynamicArchs() []ArchID { return archsInGrid(GridDynamic) }

// ExtensionArchs lists architectures beyond the paper's tables.
func ExtensionArchs() []ArchID { return archsInGrid(GridExtension) }

// PaperArchs lists the paper-grid architectures (Tables 3 and 4) in paper
// order.
func PaperArchs() []ArchID { return append(StaticArchs(), DynamicArchs()...) }

// AllArchs lists every registered architecture: the paper grids in paper
// order followed by the extensions.
func AllArchs() []ArchID { return append(PaperArchs(), ExtensionArchs()...) }

// KnownArchNames returns every registered architecture id as a sorted
// string list, for error messages and CLI help text.
func KnownArchNames() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return ids
}

// NewSimulator constructs the named architecture's reference simulator from
// its registry descriptor. The LIKELY architecture needs the program layout
// and a profile of it to derive the per-site hint bits; the other
// architectures ignore both arguments.
func NewSimulator(id ArchID, prog *ir.Program, prof *profile.Profile) (Simulator, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("predict: unknown architecture %q (known: %v)", id, KnownArchNames())
	}
	return d.New(prog, prof)
}
