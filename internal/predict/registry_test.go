package predict

import (
	"reflect"
	"strings"
	"testing"

	"balign/internal/ir"
	"balign/internal/profile"
)

// TestAllArchsCoversRegistry is the regression test for the bug where
// AllArchs omitted pht-local even though NewSimulator accepted it: the
// canonical list is now derived from the registry, so every registered
// architecture — extensions included — must appear exactly once.
func TestAllArchsCoversRegistry(t *testing.T) {
	all := AllArchs()
	seen := map[ArchID]int{}
	for _, id := range all {
		seen[id]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("AllArchs lists %q %d times", id, n)
		}
	}
	for _, id := range []ArchID{ArchPHTLocal, ArchTAGE, ArchPerceptron} {
		if seen[id] != 1 {
			t.Errorf("AllArchs omits extension architecture %q", id)
		}
	}
	if want := len(StaticArchs()) + len(DynamicArchs()) + len(ExtensionArchs()); len(all) != want {
		t.Errorf("len(AllArchs) = %d, want static+dynamic+extension = %d", len(all), want)
	}
	if want := len(KnownArchNames()); len(all) != want {
		t.Errorf("len(AllArchs) = %d, want %d registered architectures", len(all), want)
	}
}

// TestPaperArchsMatchTables pins the paper grids: Tables 3 and 4 in paper
// order, with the extensions excluded.
func TestPaperArchsMatchTables(t *testing.T) {
	wantStatic := []ArchID{ArchFallthrough, ArchBTFNT, ArchLikely}
	if got := StaticArchs(); !reflect.DeepEqual(got, wantStatic) {
		t.Errorf("StaticArchs = %v, want %v", got, wantStatic)
	}
	wantDynamic := []ArchID{ArchPHTDirect, ArchPHTGshare, ArchBTB64, ArchBTB256}
	if got := DynamicArchs(); !reflect.DeepEqual(got, wantDynamic) {
		t.Errorf("DynamicArchs = %v, want %v", got, wantDynamic)
	}
	if got := PaperArchs(); !reflect.DeepEqual(got, append(wantStatic, wantDynamic...)) {
		t.Errorf("PaperArchs = %v, want Tables 3+4", got)
	}
	for _, id := range PaperArchs() {
		d, ok := Lookup(id)
		if !ok {
			t.Fatalf("paper architecture %q not registered", id)
		}
		if d.Grid == GridExtension {
			t.Errorf("paper architecture %q registered in the extension grid", id)
		}
	}
}

// TestUnknownArchErrorListsRegistry checks the NewSimulator error names the
// full registry, extensions included — the original omission surfaced as an
// error message listing an incomplete known set.
func TestUnknownArchErrorListsRegistry(t *testing.T) {
	_, err := NewSimulator("no-such-arch", nil, nil)
	if err == nil {
		t.Fatal("NewSimulator accepted an unknown architecture")
	}
	for _, name := range KnownArchNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered architecture %q", err, name)
		}
	}
}

// TestRegisterRejectsBadDescriptors pins the registry's init-time
// invariants: duplicate ids, empty ids, nil constructors and duplicate grid
// slots all panic.
func TestRegisterRejectsBadDescriptors(t *testing.T) {
	newOK := func(*ir.Program, *profile.Profile) (Simulator, error) { return nil, nil }
	cases := []struct {
		name string
		d    Desc
	}{
		{"empty id", Desc{New: newOK}},
		{"nil constructor", Desc{ID: "x-nil"}},
		{"duplicate id", Desc{ID: ArchFallthrough, Grid: GridExtension, Order: 99, New: newOK}},
		{"duplicate slot", Desc{ID: "x-slot", Grid: GridStatic, Order: 0, New: newOK}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%s) did not panic", tc.name)
				}
			}()
			Register(tc.d)
		})
	}
}
