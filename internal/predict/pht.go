package predict

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/trace"
)

// DirectPHT is a direct-mapped pattern history table: an array of 2-bit
// saturating counters indexed by the branch site address. The paper
// simulates a 4096-entry table (1 KB of counters).
type DirectPHT struct {
	counters []Counter2
	mask     uint64
}

// NewDirectPHT returns a direct-mapped PHT with the given number of entries
// (a power of two).
func NewDirectPHT(entries int) *DirectPHT {
	checkPow2(entries, "PHT entries")
	p := &DirectPHT{counters: make([]Counter2, entries), mask: uint64(entries - 1)}
	p.Reset()
	return p
}

func (p *DirectPHT) index(pc uint64) uint64 { return (pc / ir.InstrBytes) & p.mask }

// Predict implements DirectionPredictor.
func (p *DirectPHT) Predict(ev trace.Event) bool { return p.counters[p.index(ev.PC)].Taken() }

// Update implements DirectionPredictor.
func (p *DirectPHT) Update(ev trace.Event) {
	i := p.index(ev.PC)
	p.counters[i] = p.counters[i].Update(ev.Taken)
}

// Name implements DirectionPredictor.
func (p *DirectPHT) Name() string { return fmt.Sprintf("pht-direct-%d", len(p.counters)) }

// Reset implements DirectionPredictor.
func (p *DirectPHT) Reset() {
	for i := range p.counters {
		p.counters[i] = Counter2Init
	}
}

// GsharePHT is the degenerate two-level correlation predictor of Pan et al.
// in the variant McFarling found most accurate: the global history register
// is XORed with the branch address to index the counter table. The paper
// simulates 4096 entries with a 12-bit history register.
type GsharePHT struct {
	counters []Counter2
	mask     uint64
	histBits uint
	ghr      uint64
}

// NewGsharePHT returns a gshare PHT with the given number of entries (a
// power of two); the history register is log2(entries) bits wide.
func NewGsharePHT(entries int) *GsharePHT {
	checkPow2(entries, "PHT entries")
	bits := uint(0)
	for 1<<bits < entries {
		bits++
	}
	p := &GsharePHT{counters: make([]Counter2, entries), mask: uint64(entries - 1), histBits: bits}
	p.Reset()
	return p
}

func (p *GsharePHT) index(pc uint64) uint64 { return ((pc / ir.InstrBytes) ^ p.ghr) & p.mask }

// Predict implements DirectionPredictor.
func (p *GsharePHT) Predict(ev trace.Event) bool { return p.counters[p.index(ev.PC)].Taken() }

// Update implements DirectionPredictor.
func (p *GsharePHT) Update(ev trace.Event) {
	i := p.index(ev.PC)
	p.counters[i] = p.counters[i].Update(ev.Taken)
	p.ghr = ((p.ghr << 1) | b2u(ev.Taken)) & p.mask
}

// History returns the current global history register value (for tests).
func (p *GsharePHT) History() uint64 { return p.ghr }

// Name implements DirectionPredictor.
func (p *GsharePHT) Name() string { return fmt.Sprintf("pht-gshare-%d", len(p.counters)) }

// Reset implements DirectionPredictor.
func (p *GsharePHT) Reset() {
	p.ghr = 0
	for i := range p.counters {
		p.counters[i] = Counter2Init
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
