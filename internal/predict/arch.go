package predict

import (
	"fmt"
	"sort"

	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
)

// ReturnStackDepth is the return stack size simulated in every architecture,
// per the paper.
const ReturnStackDepth = 32

// StaticSim simulates the static and PHT architectures: a direction
// predictor handles conditional branches, a return stack handles returns,
// and the charging rules follow the paper:
//
//   - unconditional branches, correctly predicted *taken* conditional
//     branches and direct calls incur a misfetch (the fall-through was
//     fetched while the branch decoded);
//   - mispredicted conditional branches, mispredicted returns and all
//     indirect jumps incur a mispredict;
//   - correctly predicted not-taken conditionals and correctly predicted
//     returns are free.
type StaticSim struct {
	dir DirectionPredictor
	ras *ReturnStack
	res Result
}

// NewStaticSim returns a simulator around the given direction predictor.
func NewStaticSim(dir DirectionPredictor) *StaticSim {
	return &StaticSim{dir: dir, ras: NewReturnStack(ReturnStackDepth)}
}

// Name implements Simulator.
func (s *StaticSim) Name() string { return s.dir.Name() }

// Result implements Simulator.
func (s *StaticSim) Result() Result { return s.res }

// Reset implements Simulator.
func (s *StaticSim) Reset() {
	s.dir.Reset()
	s.ras.Reset()
	s.res = Result{}
}

// Event implements trace.Sink.
func (s *StaticSim) Event(ev trace.Event) {
	s.res.Events++
	s.res.ByKind[ev.Kind]++
	switch ev.Kind {
	case ir.CondBr:
		s.res.Cond++
		if ev.Taken {
			s.res.CondTaken++
		}
		pred := s.dir.Predict(ev)
		s.dir.Update(ev)
		if pred == ev.Taken {
			s.res.CondCorrect++
			if ev.Taken {
				s.res.Misfetches++
			}
		} else {
			s.res.Mispredicts++
		}
	case ir.Br:
		s.res.Misfetches++
	case ir.Call:
		s.res.Misfetches++
		s.ras.Push(ev.Fall)
	case ir.IJump:
		s.res.Mispredicts++
	case ir.Ret:
		s.res.Rets++
		pred, ok := s.ras.Pop()
		if ok && pred == ev.Target {
			s.res.RetsCorrect++
		} else {
			s.res.Mispredicts++
		}
	}
}

// BTBSim simulates a branch target buffer architecture. The BTB predicts
// every break kind except returns, which go through the return stack. Only
// taken branches are inserted; a miss predicts fall-through. Charging rules:
//
//   - conditional: hit with correct direction is free (the BTB supplies the
//     target before fetch); wrong direction is a mispredict; miss on a taken
//     conditional is a mispredict (fall-through was predicted), miss on a
//     not-taken conditional is free;
//   - unconditional branch / direct call: hit is free, miss is a misfetch
//     (the decoder computes the target one stage later);
//   - indirect jump: hit with matching target is free, otherwise a
//     mispredict;
//   - return: correct return-stack prediction is free, otherwise a
//     mispredict.
type BTBSim struct {
	btb  *BTB
	ras  *ReturnStack
	res  Result
	name string
}

// NewBTBSim returns a BTB architecture simulator with the given BTB
// geometry.
func NewBTBSim(entries, ways int) *BTBSim {
	return &BTBSim{
		btb:  NewBTB(entries, ways),
		ras:  NewReturnStack(ReturnStackDepth),
		name: fmt.Sprintf("btb-%d-%dway", entries, ways),
	}
}

// Name implements Simulator.
func (s *BTBSim) Name() string { return s.name }

// Result implements Simulator.
func (s *BTBSim) Result() Result { return s.res }

// BTB exposes the underlying buffer (for tests and hit-rate reporting).
func (s *BTBSim) BTB() *BTB { return s.btb }

// Reset implements Simulator.
func (s *BTBSim) Reset() {
	s.btb.Reset()
	s.ras.Reset()
	s.res = Result{}
}

// Event implements trace.Sink.
func (s *BTBSim) Event(ev trace.Event) {
	s.res.Events++
	s.res.ByKind[ev.Kind]++
	switch ev.Kind {
	case ir.CondBr:
		s.res.Cond++
		if ev.Taken {
			s.res.CondTaken++
		}
		entry := s.btb.Lookup(ev.PC)
		if entry != nil {
			predTaken := entry.PredictTaken()
			if predTaken == ev.Taken {
				s.res.CondCorrect++
				// Taken and correctly predicted: the stored target of a
				// direct conditional is always right, so no penalty.
			} else {
				s.res.Mispredicts++
			}
			entry.Update(ev.Taken, ev.Target)
		} else {
			if ev.Taken {
				s.res.Mispredicts++
				s.btb.Insert(ev.PC, ev.Target)
			} else {
				s.res.CondCorrect++
			}
		}
	case ir.Br:
		if s.btb.Lookup(ev.PC) == nil {
			s.res.Misfetches++
			s.btb.Insert(ev.PC, ev.Target)
		}
	case ir.Call:
		if s.btb.Lookup(ev.PC) == nil {
			s.res.Misfetches++
			s.btb.Insert(ev.PC, ev.Target)
		}
		s.ras.Push(ev.Fall)
	case ir.IJump:
		entry := s.btb.Lookup(ev.PC)
		if entry != nil && entry.Target() == ev.Target {
			// hit with the right target: free
		} else {
			s.res.Mispredicts++
			if entry != nil {
				entry.Update(true, ev.Target)
			} else {
				s.btb.Insert(ev.PC, ev.Target)
			}
		}
	case ir.Ret:
		s.res.Rets++
		pred, ok := s.ras.Pop()
		if ok && pred == ev.Target {
			s.res.RetsCorrect++
		} else {
			s.res.Mispredicts++
		}
	}
}

// ArchID names one of the simulated architectures.
type ArchID string

// The architectures evaluated in the paper's Tables 3 and 4.
const (
	ArchFallthrough ArchID = "fallthrough"
	ArchBTFNT       ArchID = "btfnt"
	ArchLikely      ArchID = "likely"
	ArchPHTDirect   ArchID = "pht-direct"
	ArchPHTGshare   ArchID = "pht-gshare"
	ArchBTB64       ArchID = "btb64"
	ArchBTB256      ArchID = "btb256"
)

// StaticArchs lists the static architectures (Table 3) in paper order.
func StaticArchs() []ArchID { return []ArchID{ArchFallthrough, ArchBTFNT, ArchLikely} }

// DynamicArchs lists the dynamic architectures (Table 4) in paper order.
func DynamicArchs() []ArchID {
	return []ArchID{ArchPHTDirect, ArchPHTGshare, ArchBTB64, ArchBTB256}
}

// AllArchs lists every architecture in paper order.
func AllArchs() []ArchID { return append(StaticArchs(), DynamicArchs()...) }

// NewSimulator constructs the named architecture simulator. The LIKELY
// architecture needs the program layout and a profile of it to derive the
// per-site hint bits; the other architectures ignore both arguments.
func NewSimulator(id ArchID, prog *ir.Program, prof *profile.Profile) (Simulator, error) {
	switch id {
	case ArchFallthrough:
		return NewStaticSim(Fallthrough{}), nil
	case ArchBTFNT:
		return NewStaticSim(BTFNT{}), nil
	case ArchLikely:
		if prog == nil || prof == nil {
			return nil, fmt.Errorf("predict: LIKELY architecture requires a program and profile")
		}
		return NewStaticSim(NewLikely(prog, prof)), nil
	case ArchPHTDirect:
		return NewStaticSim(NewDirectPHT(4096)), nil
	case ArchPHTGshare:
		return NewStaticSim(NewGsharePHT(4096)), nil
	case ArchPHTLocal:
		return NewStaticSim(NewLocalPHT(1024, 4096)), nil
	case ArchBTB64:
		return NewBTBSim(64, 2), nil
	case ArchBTB256:
		return NewBTBSim(256, 4), nil
	default:
		ids := make([]string, 0, len(AllArchs()))
		for _, a := range AllArchs() {
			ids = append(ids, string(a))
		}
		sort.Strings(ids)
		return nil, fmt.Errorf("predict: unknown architecture %q (known: %v)", id, ids)
	}
}
