package predict

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
)

// ReturnStackDepth is the return stack size simulated in every architecture,
// per the paper.
const ReturnStackDepth = 32

// StaticSim simulates the static and PHT architectures: a direction
// predictor handles conditional branches, a return stack handles returns,
// and the charging rules follow the paper:
//
//   - unconditional branches, correctly predicted *taken* conditional
//     branches and direct calls incur a misfetch (the fall-through was
//     fetched while the branch decoded);
//   - mispredicted conditional branches, mispredicted returns and all
//     indirect jumps incur a mispredict;
//   - correctly predicted not-taken conditionals and correctly predicted
//     returns are free.
type StaticSim struct {
	dir DirectionPredictor
	ras *ReturnStack
	res Result
}

// NewStaticSim returns a simulator around the given direction predictor.
func NewStaticSim(dir DirectionPredictor) *StaticSim {
	return &StaticSim{dir: dir, ras: NewReturnStack(ReturnStackDepth)}
}

// Name implements Simulator.
func (s *StaticSim) Name() string { return s.dir.Name() }

// Result implements Simulator.
func (s *StaticSim) Result() Result { return s.res }

// Reset implements Simulator.
func (s *StaticSim) Reset() {
	s.dir.Reset()
	s.ras.Reset()
	s.res = Result{}
}

// Event implements trace.Sink.
func (s *StaticSim) Event(ev trace.Event) {
	s.res.Events++
	s.res.ByKind[ev.Kind]++
	switch ev.Kind {
	case ir.CondBr:
		s.res.Cond++
		if ev.Taken {
			s.res.CondTaken++
		}
		pred := s.dir.Predict(ev)
		s.dir.Update(ev)
		if pred == ev.Taken {
			s.res.CondCorrect++
			if ev.Taken {
				s.res.Misfetches++
			}
		} else {
			s.res.Mispredicts++
		}
	case ir.Br:
		s.res.Misfetches++
	case ir.Call:
		s.res.Misfetches++
		s.ras.Push(ev.Fall)
	case ir.IJump:
		s.res.Mispredicts++
	case ir.Ret:
		s.res.Rets++
		pred, ok := s.ras.Pop()
		if ok && pred == ev.Target {
			s.res.RetsCorrect++
		} else {
			s.res.Mispredicts++
		}
	}
}

// BTBSim simulates a branch target buffer architecture. The BTB predicts
// every break kind except returns, which go through the return stack. Only
// taken branches are inserted; a miss predicts fall-through. Charging rules:
//
//   - conditional: hit with correct direction is free (the BTB supplies the
//     target before fetch); wrong direction is a mispredict; miss on a taken
//     conditional is a mispredict (fall-through was predicted), miss on a
//     not-taken conditional is free;
//   - unconditional branch / direct call: hit is free, miss is a misfetch
//     (the decoder computes the target one stage later);
//   - indirect jump: hit with matching target is free, otherwise a
//     mispredict;
//   - return: correct return-stack prediction is free, otherwise a
//     mispredict.
type BTBSim struct {
	btb  *BTB
	ras  *ReturnStack
	res  Result
	name string
}

// NewBTBSim returns a BTB architecture simulator with the given BTB
// geometry.
func NewBTBSim(entries, ways int) *BTBSim {
	return &BTBSim{
		btb:  NewBTB(entries, ways),
		ras:  NewReturnStack(ReturnStackDepth),
		name: fmt.Sprintf("btb-%d-%dway", entries, ways),
	}
}

// Name implements Simulator.
func (s *BTBSim) Name() string { return s.name }

// Result implements Simulator.
func (s *BTBSim) Result() Result { return s.res }

// BTB exposes the underlying buffer (for tests and hit-rate reporting).
func (s *BTBSim) BTB() *BTB { return s.btb }

// Reset implements Simulator.
func (s *BTBSim) Reset() {
	s.btb.Reset()
	s.ras.Reset()
	s.res = Result{}
}

// Event implements trace.Sink.
func (s *BTBSim) Event(ev trace.Event) {
	s.res.Events++
	s.res.ByKind[ev.Kind]++
	switch ev.Kind {
	case ir.CondBr:
		s.res.Cond++
		if ev.Taken {
			s.res.CondTaken++
		}
		entry := s.btb.Lookup(ev.PC)
		if entry != nil {
			predTaken := entry.PredictTaken()
			if predTaken == ev.Taken {
				s.res.CondCorrect++
				// Taken and correctly predicted: the stored target of a
				// direct conditional is always right, so no penalty.
			} else {
				s.res.Mispredicts++
			}
			entry.Update(ev.Taken, ev.Target)
		} else {
			if ev.Taken {
				s.res.Mispredicts++
				s.btb.Insert(ev.PC, ev.Target)
			} else {
				s.res.CondCorrect++
			}
		}
	case ir.Br:
		if s.btb.Lookup(ev.PC) == nil {
			s.res.Misfetches++
			s.btb.Insert(ev.PC, ev.Target)
		}
	case ir.Call:
		if s.btb.Lookup(ev.PC) == nil {
			s.res.Misfetches++
			s.btb.Insert(ev.PC, ev.Target)
		}
		s.ras.Push(ev.Fall)
	case ir.IJump:
		entry := s.btb.Lookup(ev.PC)
		if entry != nil && entry.Target() == ev.Target {
			// hit with the right target: free
		} else {
			s.res.Mispredicts++
			if entry != nil {
				entry.Update(true, ev.Target)
			} else {
				s.btb.Insert(ev.PC, ev.Target)
			}
		}
	case ir.Ret:
		s.res.Rets++
		pred, ok := s.ras.Pop()
		if ok && pred == ev.Target {
			s.res.RetsCorrect++
		} else {
			s.res.Mispredicts++
		}
	}
}

// ArchID names one of the simulated architectures.
type ArchID string

// The architectures evaluated in the paper's Tables 3 and 4.
const (
	ArchFallthrough ArchID = "fallthrough"
	ArchBTFNT       ArchID = "btfnt"
	ArchLikely      ArchID = "likely"
	ArchPHTDirect   ArchID = "pht-direct"
	ArchPHTGshare   ArchID = "pht-gshare"
	ArchBTB64       ArchID = "btb64"
	ArchBTB256      ArchID = "btb256"
)

// The paper architectures' registry entries. Geometry lives in each
// descriptor's KernelSpec and the reference constructors read it from
// there, so the simulated table sizes have exactly one source.
func init() {
	Register(Desc{
		ID: ArchFallthrough, Class: ClassStatic, Grid: GridStatic, Order: 0,
		CostGroup: CostFallthrough,
		Kernel:    KernelSpec{Kind: KernelFallthrough},
		New: func(*ir.Program, *profile.Profile) (Simulator, error) {
			return NewStaticSim(Fallthrough{}), nil
		},
	})
	Register(Desc{
		ID: ArchBTFNT, Class: ClassStatic, Grid: GridStatic, Order: 1,
		CostGroup: CostBTFNT,
		Kernel:    KernelSpec{Kind: KernelBTFNT},
		New: func(*ir.Program, *profile.Profile) (Simulator, error) {
			return NewStaticSim(BTFNT{}), nil
		},
	})
	Register(Desc{
		ID: ArchLikely, Class: ClassStatic, Grid: GridStatic, Order: 2,
		CostGroup: CostLikely,
		Kernel:    KernelSpec{Kind: KernelLikely},
		New: func(prog *ir.Program, prof *profile.Profile) (Simulator, error) {
			if prog == nil || prof == nil {
				return nil, fmt.Errorf("predict: LIKELY architecture requires a program and profile")
			}
			return NewStaticSim(NewLikely(prog, prof)), nil
		},
	})

	direct := KernelSpec{Kind: KernelPHTDirect, PHTEntries: 4096}
	Register(Desc{
		ID: ArchPHTDirect, Class: ClassPHT, Grid: GridDynamic, Order: 0,
		CostGroup: CostPHT,
		Kernel:    direct,
		New: func(*ir.Program, *profile.Profile) (Simulator, error) {
			return NewStaticSim(NewDirectPHT(direct.PHTEntries)), nil
		},
	})
	gshare := KernelSpec{Kind: KernelPHTGshare, PHTEntries: 4096}
	Register(Desc{
		ID: ArchPHTGshare, Class: ClassPHT, Grid: GridDynamic, Order: 1,
		CostGroup: CostPHT,
		Kernel:    gshare,
		New: func(*ir.Program, *profile.Profile) (Simulator, error) {
			return NewStaticSim(NewGsharePHT(gshare.PHTEntries)), nil
		},
	})
	btb64 := KernelSpec{Kind: KernelBTB, BTBEntries: 64, BTBWays: 2}
	Register(Desc{
		ID: ArchBTB64, Class: ClassBTB, Grid: GridDynamic, Order: 2,
		CostGroup: CostBTB,
		Kernel:    btb64,
		New: func(*ir.Program, *profile.Profile) (Simulator, error) {
			return NewBTBSim(btb64.BTBEntries, btb64.BTBWays), nil
		},
	})
	btb256 := KernelSpec{Kind: KernelBTB, BTBEntries: 256, BTBWays: 4}
	Register(Desc{
		ID: ArchBTB256, Class: ClassBTB, Grid: GridDynamic, Order: 3,
		CostGroup: CostBTB,
		Kernel:    btb256,
		New: func(*ir.Program, *profile.Profile) (Simulator, error) {
			return NewBTBSim(btb256.BTBEntries, btb256.BTBWays), nil
		},
	})
}
