package predict

import (
	"testing"

	"balign/internal/trace"
)

func TestLocalPHTLearnsPerBranchPattern(t *testing.T) {
	// Two branches with opposite strict alternation: per-branch history
	// predicts both near-perfectly; a shared global history would alias.
	p := NewLocalPHT(1024, 4096)
	a := true
	correct := 0
	total := 0
	for i := 0; i < 2000; i++ {
		a = !a
		evA := trace.Event{PC: 0x1000, Taken: a}
		evB := trace.Event{PC: 0x2000, Taken: !a}
		for _, ev := range []trace.Event{evA, evB} {
			if p.Predict(ev) == ev.Taken {
				correct++
			}
			p.Update(ev)
			total++
		}
	}
	if float64(correct)/float64(total) < 0.95 {
		t.Errorf("local PHT correct = %d/%d, want near-perfect on alternation", correct, total)
	}
}

func TestLocalPHTReset(t *testing.T) {
	p := NewLocalPHT(64, 256)
	ev := trace.Event{PC: 0x1000, Taken: true}
	p.Update(ev)
	p.Update(ev)
	p.Reset()
	if p.Predict(ev) {
		t.Error("Reset did not clear counters")
	}
}

func TestLocalPHTGeometryValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLocalPHT(100, 256) },
		func() { NewLocalPHT(64, 100) },
		func() { NewLocalPHT(64, 1<<17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestArchPHTLocalRegistered(t *testing.T) {
	sim, err := NewSimulator(ArchPHTLocal, nil, nil)
	if err != nil {
		t.Fatalf("NewSimulator(pht-local): %v", err)
	}
	if sim.Name() == "" {
		t.Error("empty name")
	}
	if len(ExtensionArchs()) == 0 {
		t.Error("no extension architectures listed")
	}
}
