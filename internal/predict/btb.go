package predict

import (
	"fmt"

	"balign/internal/ir"
)

// BTBEntry is one branch target buffer line: the full site address as tag,
// the last taken target, and a 2-bit counter predicting conditional branch
// direction (as in the Intel Pentium's BTB, which the paper models).
type BTBEntry struct {
	valid   bool
	tag     uint64
	target  uint64
	counter Counter2
	lru     uint64 // larger = more recently used
}

// BTB is a set-associative branch target buffer. Only taken branches are
// inserted; a lookup miss therefore implies a fall-through prediction. The
// paper simulates a 64-entry 2-way and a 256-entry 4-way configuration.
type BTB struct {
	sets  int
	ways  int
	lines []BTBEntry // sets*ways, row-major by set
	tick  uint64

	// statistics
	Lookups uint64
	Hits    uint64
}

// NewBTB returns a BTB with the given total entries and associativity; the
// set count (entries/ways) must be a power of two.
func NewBTB(entries, ways int) *BTB {
	if ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("predict: BTB entries %d not divisible by ways %d", entries, ways))
	}
	sets := entries / ways
	checkPow2(sets, "BTB sets")
	return &BTB{sets: sets, ways: ways, lines: make([]BTBEntry, entries)}
}

// Entries returns the total line count.
func (b *BTB) Entries() int { return b.sets * b.ways }

// Ways returns the associativity.
func (b *BTB) Ways() int { return b.ways }

func (b *BTB) set(pc uint64) []BTBEntry {
	s := int((pc / ir.InstrBytes) % uint64(b.sets))
	return b.lines[s*b.ways : (s+1)*b.ways]
}

// Lookup returns the entry for pc, or nil on miss. A hit refreshes the
// entry's LRU state.
func (b *BTB) Lookup(pc uint64) *BTBEntry {
	b.Lookups++
	b.tick++
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].lru = b.tick
			b.Hits++
			return &set[i]
		}
	}
	return nil
}

// Insert installs a taken branch with the given target, evicting the LRU
// way. The 2-bit counter starts strongly taken (the branch was just taken).
func (b *BTB) Insert(pc, target uint64) *BTBEntry {
	b.tick++
	set := b.set(pc)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = BTBEntry{valid: true, tag: pc, target: target, counter: 3, lru: b.tick}
	return &set[victim]
}

// Target returns the stored target of an entry.
func (e *BTBEntry) Target() uint64 { return e.target }

// PredictTaken reports the entry's direction prediction for conditionals.
func (e *BTBEntry) PredictTaken() bool { return e.counter.Taken() }

// Update trains the entry with the branch outcome and, when taken, the
// actual target.
func (e *BTBEntry) Update(taken bool, target uint64) {
	e.counter = e.counter.Update(taken)
	if taken {
		e.target = target
	}
}

// Reset invalidates every line and clears statistics.
func (b *BTB) Reset() {
	for i := range b.lines {
		b.lines[i] = BTBEntry{}
	}
	b.tick, b.Lookups, b.Hits = 0, 0, 0
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Lookups)
}

// ReturnStack is a fixed-depth return address stack (the paper simulates 32
// entries in every configuration). Pushing past the capacity wraps around
// and overwrites the oldest entry, as hardware stacks do.
type ReturnStack struct {
	entries []uint64
	top     int // index of next push slot
	depth   int // live entries, capped at capacity
}

// NewReturnStack returns a stack with the given capacity.
func NewReturnStack(capacity int) *ReturnStack {
	if capacity <= 0 {
		panic("predict: return stack capacity must be positive")
	}
	return &ReturnStack{entries: make([]uint64, capacity)}
}

// Push records a return address (called on procedure calls).
func (s *ReturnStack) Push(addr uint64) {
	s.entries[s.top] = addr
	s.top = (s.top + 1) % len(s.entries)
	if s.depth < len(s.entries) {
		s.depth++
	}
}

// Pop returns the predicted return address; ok is false when the stack is
// empty (the prediction then has no basis and counts as wrong unless the
// actual target happens to be 0).
func (s *ReturnStack) Pop() (addr uint64, ok bool) {
	if s.depth == 0 {
		return 0, false
	}
	s.top = (s.top - 1 + len(s.entries)) % len(s.entries)
	s.depth--
	return s.entries[s.top], true
}

// Depth returns the number of live entries.
func (s *ReturnStack) Depth() int { return s.depth }

// Reset empties the stack.
func (s *ReturnStack) Reset() { s.top, s.depth = 0, 0 }
