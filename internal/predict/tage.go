package predict

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
)

// TAGEConfig sizes a TAGE predictor: a bimodal base table plus a set of
// partially-tagged tables indexed by geometrically increasing history
// lengths (Seznec & Michaud's TAGE family).
type TAGEConfig struct {
	// BaseEntries is the bimodal fallback table size (a power of two).
	BaseEntries int
	// TableEntries is each tagged table's size (a power of two).
	TableEntries int
	// TagBits is the partial-tag width of the tagged tables (at most 12).
	TagBits uint
	// HistLens are the geometric global-history lengths, one per tagged
	// table, strictly ascending and at most 63 bits.
	HistLens []uint
}

// DefaultTAGEConfig is the registered "tage" architecture's geometry: four
// tagged 1K-entry tables over a ~1.1x-per-step doubled geometric series and
// a 4K bimodal base — small by hardware standards but far stronger than any
// of the paper's 1994-era predictors.
var DefaultTAGEConfig = TAGEConfig{
	BaseEntries:  4096,
	TableEntries: 1024,
	TagBits:      9,
	HistLens:     []uint{5, 11, 23, 44},
}

// tage3Max is the saturating ceiling of the tagged tables' 3-bit counters
// (taken when >= tage3Weak+1's midpoint, see ctr3Taken).
const (
	tage3Max       = 7
	tage3WeakTaken = 4
	tage3WeakNot   = 3
	tageUMax       = 3
)

// TAGE is a tagged geometric-history-length predictor. One TAGE value is
// the single source of truth for both executors: the reference simulator
// wraps it as a DirectionPredictor (per-event methods) and the compiled
// kernel calls the slot/bit methods directly, so ref-vs-flat parity is
// structural, not coincidental. The update rule follows the TAGE papers'
// core mechanisms — provider/altpred selection over the longest matching
// tag, useful-bit training when they disagree, allocation into a longer
// history table on mispredict with useful-bit victim selection, and aging
// (useful-bit decay) when no victim is free. All updates are deterministic:
// allocation scans the shorter-history candidates first instead of drawing
// from an LFSR, so sharded streaming replays are bit-exact.
type TAGE struct {
	cfg      TAGEConfig
	idxBits  uint
	baseMask uint64
	tblMask  uint64
	tagMask  uint64

	base []Counter2
	// Per-table state, in structure-of-arrays form: tags hold tag+1 so
	// zero means never-allocated, ctrs are 3-bit saturating counters, us
	// the 2-bit useful counters.
	tags [][]uint16
	ctrs [][]uint8
	us   [][]uint8

	ghr uint64
}

// NewTAGE builds a TAGE predictor from cfg.
func NewTAGE(cfg TAGEConfig) *TAGE {
	checkPow2(cfg.BaseEntries, "TAGE base entries")
	checkPow2(cfg.TableEntries, "TAGE table entries")
	if cfg.TagBits == 0 || cfg.TagBits > 12 {
		panic(fmt.Sprintf("predict: TAGE tag width must be in [1,12], got %d", cfg.TagBits))
	}
	if len(cfg.HistLens) == 0 {
		panic("predict: TAGE needs at least one tagged table")
	}
	for i, l := range cfg.HistLens {
		if l == 0 || l > 63 {
			panic(fmt.Sprintf("predict: TAGE history length %d out of [1,63]", l))
		}
		if i > 0 && l <= cfg.HistLens[i-1] {
			panic("predict: TAGE history lengths must be strictly ascending")
		}
	}
	bits := uint(0)
	for 1<<bits < cfg.TableEntries {
		bits++
	}
	t := &TAGE{
		cfg:      cfg,
		idxBits:  bits,
		baseMask: uint64(cfg.BaseEntries - 1),
		tblMask:  uint64(cfg.TableEntries - 1),
		tagMask:  uint64(1)<<cfg.TagBits - 1,
		base:     make([]Counter2, cfg.BaseEntries),
		tags:     make([][]uint16, len(cfg.HistLens)),
		ctrs:     make([][]uint8, len(cfg.HistLens)),
		us:       make([][]uint8, len(cfg.HistLens)),
	}
	for i := range cfg.HistLens {
		t.tags[i] = make([]uint16, cfg.TableEntries)
		t.ctrs[i] = make([]uint8, cfg.TableEntries)
		t.us[i] = make([]uint8, cfg.TableEntries)
	}
	t.Reset()
	return t
}

// foldHist XOR-folds the low length bits of h into a bits-wide value — the
// classic history-compression hash of the geometric-history predictors.
func foldHist(h uint64, length, bits uint) uint64 {
	h &= uint64(1)<<length - 1
	m := uint64(1)<<bits - 1
	var f uint64
	for ; h != 0; h >>= bits {
		f ^= h & m
	}
	return f
}

// index returns tagged table i's entry index for a site slot under the
// current history.
func (t *TAGE) index(slot uint64, i int) uint64 {
	l := t.cfg.HistLens[i]
	return (slot ^ slot>>t.idxBits ^ foldHist(t.ghr, l, t.idxBits) ^ uint64(i)) & t.tblMask
}

// tag returns tagged table i's partial tag for a site slot, stored +1 so
// zero marks a never-allocated entry.
func (t *TAGE) tag(slot uint64, i int) uint16 {
	l := t.cfg.HistLens[i]
	want := (slot ^ foldHist(t.ghr, l, t.cfg.TagBits) ^ foldHist(t.ghr, l, t.cfg.TagBits-1)<<1) & t.tagMask
	return uint16(want) + 1
}

// lookup resolves the provider and alternate components for slot under the
// current history: table indexes into tags/ctrs (or -1 for the bimodal
// base) plus each component's entry index.
func (t *TAGE) lookup(slot uint64) (provider, alt int, pIdx, aIdx uint64) {
	provider, alt = -1, -1
	for i := len(t.cfg.HistLens) - 1; i >= 0; i-- {
		idx := t.index(slot, i)
		if t.tags[i][idx] != t.tag(slot, i) {
			continue
		}
		if provider < 0 {
			provider, pIdx = i, idx
		} else {
			alt, aIdx = i, idx
			break
		}
	}
	return provider, alt, pIdx, aIdx
}

// predOf reads component (table, idx)'s direction bit; table -1 is the
// bimodal base.
func (t *TAGE) predOf(slot uint64, table int, idx uint64) uint8 {
	if table < 0 {
		if t.base[slot&t.baseMask].Taken() {
			return 1
		}
		return 0
	}
	return t.ctrs[table][idx] >> 2 & 1 // 3-bit counter: taken when >= 4
}

// PredictBit returns the predicted direction (1 = taken) for the site at
// instruction slot, without mutating any state.
func (t *TAGE) PredictBit(slot uint64) uint8 {
	provider, _, pIdx, _ := t.lookup(slot)
	return t.predOf(slot, provider, pIdx)
}

// UpdateBit trains the predictor with the actual outcome of the site at
// slot. It recomputes the component selection from the (pre-update) state,
// so Predict-then-Update and a bare Update evolve the state identically.
func (t *TAGE) UpdateBit(slot uint64, taken uint8) {
	provider, alt, pIdx, aIdx := t.lookup(slot)
	pred := t.predOf(slot, provider, pIdx)
	altPred := pred
	if provider >= 0 {
		if alt >= 0 {
			altPred = t.predOf(slot, alt, aIdx)
		} else {
			altPred = t.predOf(slot, -1, 0)
		}
	}

	// Train the provider: its useful counter when it disambiguated from
	// the alternate prediction, then its direction counter.
	if provider >= 0 {
		if pred != altPred {
			u := t.us[provider][pIdx]
			if pred == taken {
				if u < tageUMax {
					t.us[provider][pIdx] = u + 1
				}
			} else if u > 0 {
				t.us[provider][pIdx] = u - 1
			}
		}
		t.ctrs[provider][pIdx] = ctr3Step(t.ctrs[provider][pIdx], taken)
	} else {
		b := slot & t.baseMask
		t.base[b] = t.base[b].Update(taken != 0)
	}

	// On a mispredict, allocate a longer-history entry: the first
	// not-useful victim wins (shortest candidate history first); if every
	// candidate is protected, age them all instead.
	if pred != taken && provider < len(t.cfg.HistLens)-1 {
		allocated := false
		for j := provider + 1; j < len(t.cfg.HistLens); j++ {
			idx := t.index(slot, j)
			if t.us[j][idx] == 0 {
				t.tags[j][idx] = t.tag(slot, j)
				if taken != 0 {
					t.ctrs[j][idx] = tage3WeakTaken
				} else {
					t.ctrs[j][idx] = tage3WeakNot
				}
				allocated = true
				break
			}
		}
		if !allocated {
			for j := provider + 1; j < len(t.cfg.HistLens); j++ {
				idx := t.index(slot, j)
				if t.us[j][idx] > 0 {
					t.us[j][idx]--
				}
			}
		}
	}

	t.ghr = t.ghr<<1 | uint64(taken)
}

// ctr3Step moves a 3-bit saturating counter toward the outcome.
func ctr3Step(c, taken uint8) uint8 {
	if taken != 0 {
		if c < tage3Max {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Predict implements DirectionPredictor.
func (t *TAGE) Predict(ev trace.Event) bool { return t.PredictBit(ev.PC/ir.InstrBytes) != 0 }

// Update implements DirectionPredictor.
func (t *TAGE) Update(ev trace.Event) {
	var bit uint8
	if ev.Taken {
		bit = 1
	}
	t.UpdateBit(ev.PC/ir.InstrBytes, bit)
}

// Name implements DirectionPredictor.
func (t *TAGE) Name() string {
	return fmt.Sprintf("tage-%dx%d", len(t.cfg.HistLens), t.cfg.TableEntries)
}

// History returns the global history register (for tests).
func (t *TAGE) History() uint64 { return t.ghr }

// Reset implements DirectionPredictor: the bimodal base returns to the
// weakly-not-taken state and every tagged entry is invalidated.
func (t *TAGE) Reset() {
	t.ghr = 0
	for i := range t.base {
		t.base[i] = Counter2Init
	}
	for i := range t.tags {
		for j := range t.tags[i] {
			t.tags[i][j] = 0
			t.ctrs[i][j] = 0
			t.us[i][j] = 0
		}
	}
}

// ArchTAGE is the extension TAGE architecture (DefaultTAGEConfig geometry).
const ArchTAGE ArchID = "tage"

func init() {
	spec := KernelSpec{Kind: KernelTAGE, TAGE: DefaultTAGEConfig}
	Register(Desc{
		ID: ArchTAGE, Class: ClassTagged, Grid: GridExtension, Order: 1,
		CostGroup: CostTagged,
		Kernel:    spec,
		New: func(*ir.Program, *profile.Profile) (Simulator, error) {
			return NewStaticSim(NewTAGE(spec.TAGE)), nil
		},
	})
}
