package predict

import "testing"

// tinyTAGE is a small geometry that exercises allocation and aging quickly.
var tinyTAGE = TAGEConfig{
	BaseEntries:  64,
	TableEntries: 64,
	TagBits:      7,
	HistLens:     []uint{3, 7, 15, 31},
}

// patternAccuracy drives the predictor at one slot through reps of the
// pattern and returns the accuracy over the final rep — the pattern period
// bounds the history a predictor needs to learn it.
func patternAccuracy(upd interface {
	PredictBit(uint64) uint8
	UpdateBit(uint64, uint8)
}, slot uint64, pattern []uint8, reps int) float64 {
	correct, total := 0, 0
	for r := 0; r < reps; r++ {
		for _, taken := range pattern {
			if r == reps-1 {
				if upd.PredictBit(slot) == taken {
					correct++
				}
				total++
			}
			upd.UpdateBit(slot, taken)
		}
	}
	return float64(correct) / float64(total)
}

// TestTAGELearnsHistoryPattern checks TAGE learns a periodic direction
// pattern a history-free bimodal counter cannot: alternating T/N converges
// to perfect prediction once a tagged table keys on the history.
func TestTAGELearnsHistoryPattern(t *testing.T) {
	tage := NewTAGE(tinyTAGE)
	if acc := patternAccuracy(tage, 7, []uint8{1, 0}, 200); acc != 1.0 {
		t.Errorf("TAGE accuracy on alternating pattern = %v, want 1.0", acc)
	}
	tage.Reset()
	if acc := patternAccuracy(tage, 7, []uint8{1, 1, 0, 1, 0, 0, 1, 0}, 400); acc < 0.9 {
		t.Errorf("TAGE accuracy on period-8 pattern = %v, want >= 0.9", acc)
	}
}

// TestTAGEPredictIsPure checks PredictBit mutates nothing: interleaving
// predictions with updates evolves the state exactly as updates alone do.
func TestTAGEPredictIsPure(t *testing.T) {
	a, b := NewTAGE(tinyTAGE), NewTAGE(tinyTAGE)
	seq := []struct {
		slot  uint64
		taken uint8
	}{}
	for i := 0; i < 500; i++ {
		seq = append(seq, struct {
			slot  uint64
			taken uint8
		}{uint64(i*13) % 97, uint8(i*i) % 2})
	}
	for _, s := range seq {
		for k := 0; k < 3; k++ {
			a.PredictBit(s.slot) // extra reads must not perturb the state
		}
		a.UpdateBit(s.slot, s.taken)
		b.UpdateBit(s.slot, s.taken)
	}
	for _, s := range seq {
		if a.PredictBit(s.slot) != b.PredictBit(s.slot) {
			t.Fatalf("state diverged at slot %d: PredictBit is not pure", s.slot)
		}
	}
	if a.History() != b.History() {
		t.Fatalf("history diverged: %#x vs %#x", a.History(), b.History())
	}
}

// TestTAGEResetRestoresInitialState checks a reset predictor replays a
// sequence exactly as a fresh one does.
func TestTAGEResetRestoresInitialState(t *testing.T) {
	warm := NewTAGE(tinyTAGE)
	for i := 0; i < 1000; i++ {
		warm.UpdateBit(uint64(i%53), uint8((i/3)%2))
	}
	warm.Reset()
	fresh := NewTAGE(tinyTAGE)
	for i := 0; i < 300; i++ {
		slot, taken := uint64(i*7)%53, uint8(i%3%2)
		if got, want := warm.PredictBit(slot), fresh.PredictBit(slot); got != want {
			t.Fatalf("step %d: reset predictor predicts %d, fresh predicts %d", i, got, want)
		}
		warm.UpdateBit(slot, taken)
		fresh.UpdateBit(slot, taken)
	}
}

// TestFoldHist pins the XOR-fold hash on hand-computed cases.
func TestFoldHist(t *testing.T) {
	cases := []struct {
		h            uint64
		length, bits uint
		want         uint64
	}{
		{0, 10, 4, 0},
		{0b1111, 4, 4, 0b1111},
		{0b11110000, 8, 4, 0b1111 ^ 0b0000},
		{0b101101, 6, 3, 0b101 ^ 0b101},
		{^uint64(0), 8, 4, 0},  // two identical nibbles cancel
		{^uint64(0), 64, 1, 0}, // 64 ones fold to parity 0
		{0xABCD, 8, 8, 0xCD},   // length masks off the high byte
	}
	for _, c := range cases {
		if got := foldHist(c.h, c.length, c.bits); got != c.want {
			t.Errorf("foldHist(%#x, %d, %d) = %#x, want %#x", c.h, c.length, c.bits, got, c.want)
		}
	}
}
