package predict_test

// Statistical validation of the predictor simulators against programs with
// known branch behaviour. Lives in an external test package because it
// drives the predictors through the workload diagnostics corpus and the VM.

import (
	"testing"

	"balign/internal/predict"
	"balign/internal/vm"
	"balign/internal/workload"
)

// accuracy runs one diagnostic program against a direction predictor
// wrapped in a static simulator and returns conditional accuracy.
func accuracy(t *testing.T, diagName string, dir predict.DirectionPredictor) float64 {
	t.Helper()
	d, err := workload.DiagnosticByName(diagName)
	if err != nil {
		t.Fatal(err)
	}
	sim := predict.NewStaticSim(dir)
	machine := vm.New(d.Prog)
	if d.Setup != nil {
		d.Setup(machine)
	}
	if _, err := machine.Run(sim, nil); err != nil {
		t.Fatal(err)
	}
	r := sim.Result()
	if r.Cond == 0 {
		t.Fatalf("%s: no conditional branches executed", diagName)
	}
	return r.CondAccuracy()
}

func TestAlternatingDefeatsCountersNotHistory(t *testing.T) {
	gshare := accuracy(t, "alternating", predict.NewGsharePHT(4096))
	local := accuracy(t, "alternating", predict.NewLocalPHT(1024, 4096))
	direct := accuracy(t, "alternating", predict.NewDirectPHT(4096))
	if gshare < 0.95 {
		t.Errorf("gshare on alternating = %.3f, want near-perfect", gshare)
	}
	if local < 0.95 {
		t.Errorf("local on alternating = %.3f, want near-perfect", local)
	}
	if direct > gshare {
		t.Errorf("direct (%.3f) should not beat gshare (%.3f) on alternation", direct, gshare)
	}
}

func TestBiasedBranchEveryoneDoesWell(t *testing.T) {
	for _, p := range []predict.DirectionPredictor{
		predict.NewDirectPHT(4096),
		predict.NewGsharePHT(4096),
		predict.NewLocalPHT(1024, 4096),
	} {
		if acc := accuracy(t, "biased", p); acc < 0.85 {
			t.Errorf("%s on biased = %.3f, want >= 0.85", p.Name(), acc)
		}
	}
	// Profile-style LIKELY also handles bias; BT/FNT depends on layout.
	if acc := accuracy(t, "biased", predict.BTFNT{}); acc < 0.4 {
		t.Errorf("btfnt on biased = %.3f, implausibly low", acc)
	}
}

func TestCorrelationNeedsGlobalHistory(t *testing.T) {
	gshare := accuracy(t, "correlated", predict.NewGsharePHT(4096))
	direct := accuracy(t, "correlated", predict.NewDirectPHT(4096))
	// The corpus interleaves two data-random correlated branches with a
	// predictable loop branch; gshare should clearly beat the direct PHT,
	// which can do no better than ~50% on the two random sites.
	if gshare <= direct+0.05 {
		t.Errorf("gshare (%.3f) should clearly beat direct PHT (%.3f) on correlation", gshare, direct)
	}
}

func TestRandomBranchBoundsEveryone(t *testing.T) {
	// With one random 50/50 branch and one predictable loop branch, no
	// predictor should exceed ~(0.5 + 1.0)/2 = 0.78 by much, and none
	// should collapse below ~0.45.
	for _, p := range []predict.DirectionPredictor{
		predict.NewDirectPHT(4096),
		predict.NewGsharePHT(4096),
		predict.NewLocalPHT(1024, 4096),
		predict.BTFNT{},
	} {
		acc := accuracy(t, "random", p)
		if acc > 0.85 {
			t.Errorf("%s on random = %.3f: suspiciously high (data leak?)", p.Name(), acc)
		}
		if acc < 0.40 {
			t.Errorf("%s on random = %.3f: suspiciously low", p.Name(), acc)
		}
	}
}

func TestNestedLoopsFavourTakenBias(t *testing.T) {
	btfnt := accuracy(t, "nested", predict.BTFNT{})
	direct := accuracy(t, "nested", predict.NewDirectPHT(4096))
	ft := accuracy(t, "nested", predict.Fallthrough{})
	if btfnt < 0.95 || direct < 0.9 {
		t.Errorf("nested loops: btfnt %.3f / direct %.3f, want high", btfnt, direct)
	}
	if ft > 0.1 {
		t.Errorf("FALLTHROUGH on nested loops = %.3f, want near zero (all back edges taken)", ft)
	}
}

func TestDiagnosticsCorpusComplete(t *testing.T) {
	ds := workload.Diagnostics()
	if len(ds) < 5 {
		t.Fatalf("corpus has %d programs, want >= 5", len(ds))
	}
	for _, d := range ds {
		if err := d.Prog.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", d.Name, err)
		}
		if d.Description == "" {
			t.Errorf("%s: missing description", d.Name)
		}
	}
	if _, err := workload.DiagnosticByName("nope"); err == nil {
		t.Error("unknown diagnostic should error")
	}
	// Determinism: same accuracy twice.
	a := accuracy(t, "correlated", predict.NewGsharePHT(4096))
	b := accuracy(t, "correlated", predict.NewGsharePHT(4096))
	if a != b {
		t.Errorf("diagnostic accuracy not deterministic: %v vs %v", a, b)
	}
}
