package predict

import (
	"strings"
	"testing"
	"testing/quick"

	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
)

func TestCounter2(t *testing.T) {
	c := Counter2Init // 1: weakly not taken
	if c.Taken() {
		t.Error("initial counter predicts taken")
	}
	c = c.Update(true) // 2
	if !c.Taken() {
		t.Error("counter at 2 should predict taken")
	}
	c = c.Update(true).Update(true).Update(true) // saturate at 3
	if c != 3 {
		t.Errorf("counter = %d, want saturation at 3", c)
	}
	c = c.Update(false).Update(false).Update(false).Update(false)
	if c != 0 {
		t.Errorf("counter = %d, want saturation at 0", c)
	}
}

func TestCounter2SaturationProperty(t *testing.T) {
	f := func(updates []bool) bool {
		c := Counter2Init
		for _, u := range updates {
			c = c.Update(u)
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFallthroughPredictor(t *testing.T) {
	var p Fallthrough
	if p.Predict(trace.Event{Taken: true}) {
		t.Error("fallthrough predicted taken")
	}
	if p.Name() != "fallthrough" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestBTFNTPredictor(t *testing.T) {
	var p BTFNT
	if !p.Predict(trace.Event{PC: 100, TakenTarget: 40}) {
		t.Error("backward branch not predicted taken")
	}
	if !p.Predict(trace.Event{PC: 100, TakenTarget: 100}) {
		t.Error("self branch not predicted taken")
	}
	if p.Predict(trace.Event{PC: 100, TakenTarget: 200}) {
		t.Error("forward branch predicted taken")
	}
	// A not-taken event still predicts from the static taken target.
	if !p.Predict(trace.Event{PC: 100, Taken: false, Target: 104, TakenTarget: 40}) {
		t.Error("BT/FNT must inspect the static taken target, not the outcome")
	}
}

func likelyFixture() (*ir.Program, *profile.Profile) {
	p := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpBnez, Rd: 1, TargetBlock: 2}}}, // mostly taken
		{Instrs: []ir.Instr{{Op: ir.OpBnez, Rd: 2, TargetBlock: 3}}}, // mostly not
		{Instrs: []ir.Instr{{Op: ir.OpBnez, Rd: 3, TargetBlock: 3}}}, // never executed
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "lk", Procs: []*ir.Proc{p}}
	prog.AssignAddresses(0x1000)
	pf := profile.New("lk")
	pf.Proc("main").Branches[0] = profile.BranchCount{Taken: 90, Fall: 10}
	pf.Proc("main").Branches[1] = profile.BranchCount{Taken: 5, Fall: 95}
	return prog, pf
}

func TestLikelyPredictor(t *testing.T) {
	prog, pf := likelyFixture()
	l := NewLikely(prog, pf)
	if l.Sites() != 2 {
		t.Errorf("Sites = %d, want 2 (unexecuted branch has no hint)", l.Sites())
	}
	b0 := prog.Procs[0].Blocks[0].TermAddr()
	b1 := prog.Procs[0].Blocks[1].TermAddr()
	if !l.Predict(trace.Event{PC: b0}) {
		t.Error("hot-taken site predicted not taken")
	}
	if l.Predict(trace.Event{PC: b1}) {
		t.Error("hot-fall site predicted taken")
	}
	if l.Predict(trace.Event{PC: 0xdead}) {
		t.Error("unknown site should default to not taken")
	}
}

func TestDirectPHTLearns(t *testing.T) {
	p := NewDirectPHT(64)
	ev := trace.Event{PC: 0x1000, Taken: true}
	// Train taken twice; should then predict taken.
	p.Update(ev)
	p.Update(ev)
	if !p.Predict(ev) {
		t.Error("PHT did not learn taken bias")
	}
	// Different index must be independent.
	other := trace.Event{PC: 0x1004, Taken: true}
	if p.Predict(other) {
		t.Error("untrained entry predicts taken")
	}
	p.Reset()
	if p.Predict(ev) {
		t.Error("Reset did not clear training")
	}
}

func TestDirectPHTAliasing(t *testing.T) {
	p := NewDirectPHT(16)
	a := trace.Event{PC: 0, Taken: true}
	b := trace.Event{PC: 16 * ir.InstrBytes, Taken: true} // same index mod 16
	p.Update(a)
	p.Update(a)
	if !p.Predict(b) {
		t.Error("aliased sites should share a counter in a direct-mapped PHT")
	}
}

func TestGshareUsesHistory(t *testing.T) {
	p := NewGsharePHT(64)
	if p.History() != 0 {
		t.Fatalf("initial history = %d", p.History())
	}
	ev := trace.Event{PC: 0x1000, Taken: true}
	p.Update(ev)
	if p.History() != 1 {
		t.Errorf("history after taken = %d, want 1", p.History())
	}
	p.Update(trace.Event{PC: 0x1000, Taken: false})
	if p.History() != 2 {
		t.Errorf("history = %d, want 2 (shifted)", p.History())
	}
}

func TestGshareLearnsAlternatingPattern(t *testing.T) {
	// A strictly alternating branch defeats a direct-mapped PHT's 2-bit
	// counter but is perfectly predictable with history correlation.
	gshare := NewGsharePHT(4096)
	direct := NewDirectPHT(4096)
	var gOK, dOK int
	taken := false
	for i := 0; i < 4000; i++ {
		taken = !taken
		ev := trace.Event{PC: 0x2000, Taken: taken}
		if gshare.Predict(ev) == taken {
			gOK++
		}
		if direct.Predict(ev) == taken {
			dOK++
		}
		gshare.Update(ev)
		direct.Update(ev)
	}
	if gOK < 3800 {
		t.Errorf("gshare correct = %d/4000, want near-perfect on alternation", gOK)
	}
	if dOK > 3000 {
		t.Errorf("direct PHT correct = %d/4000; expected it to struggle on alternation", dOK)
	}
}

func TestBTBInsertLookupEvict(t *testing.T) {
	b := NewBTB(4, 2) // 2 sets x 2 ways
	if b.Lookup(0x1000) != nil {
		t.Error("lookup in empty BTB hit")
	}
	b.Insert(0x1000, 0x2000)
	e := b.Lookup(0x1000)
	if e == nil || e.Target() != 0x2000 {
		t.Fatalf("lookup after insert = %+v", e)
	}
	if !e.PredictTaken() {
		t.Error("fresh entry should predict taken")
	}
	// Fill the same set (set index = (pc/4) % 2): pc 0x1000 and 0x1008 share set 0.
	b.Insert(0x1008, 0xaaaa)
	// Touch 0x1000 so 0x1008 is LRU, then insert a third conflicting entry.
	b.Lookup(0x1000)
	b.Insert(0x1010, 0xbbbb)
	if b.Lookup(0x1008) != nil {
		t.Error("LRU entry not evicted")
	}
	if b.Lookup(0x1000) == nil {
		t.Error("MRU entry evicted")
	}
	b.Reset()
	if b.Lookup(0x1000) != nil {
		t.Error("Reset did not clear entries")
	}
}

func TestBTBGeometryValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBTB(64, 3) }, // not divisible
		func() { NewBTB(24, 2) }, // sets not power of two
		func() { NewBTB(64, 0) }, // zero ways
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad BTB geometry did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestReturnStack(t *testing.T) {
	s := NewReturnStack(2)
	if _, ok := s.Pop(); ok {
		t.Error("pop of empty stack returned ok")
	}
	s.Push(10)
	s.Push(20)
	if a, _ := s.Pop(); a != 20 {
		t.Errorf("pop = %d, want 20", a)
	}
	if a, _ := s.Pop(); a != 10 {
		t.Errorf("pop = %d, want 10", a)
	}
	// Overflow wraps: deepest entry lost.
	s.Push(1)
	s.Push(2)
	s.Push(3)
	if s.Depth() != 2 {
		t.Errorf("depth = %d, want capacity 2", s.Depth())
	}
	if a, _ := s.Pop(); a != 3 {
		t.Errorf("pop = %d, want 3", a)
	}
	if a, _ := s.Pop(); a != 2 {
		t.Errorf("pop = %d, want 2", a)
	}
	if _, ok := s.Pop(); ok {
		t.Error("entry 1 should have been overwritten by wraparound")
	}
}

func TestStaticSimChargingRules(t *testing.T) {
	s := NewStaticSim(Fallthrough{})
	// Not-taken conditional, correctly predicted: free.
	s.Event(trace.Event{Kind: ir.CondBr, Taken: false, PC: 4, Target: 100, Fall: 8})
	// Taken conditional under FALLTHROUGH: mispredict.
	s.Event(trace.Event{Kind: ir.CondBr, Taken: true, PC: 8, Target: 0, Fall: 12})
	// Unconditional: misfetch.
	s.Event(trace.Event{Kind: ir.Br, Taken: true, PC: 12, Target: 0, Fall: 16})
	// Call: misfetch, pushes return stack.
	s.Event(trace.Event{Kind: ir.Call, Taken: true, PC: 16, Target: 400, Fall: 20})
	// Indirect jump: always mispredict.
	s.Event(trace.Event{Kind: ir.IJump, Taken: true, PC: 404, Target: 500, Fall: 408})
	// Correct return: free.
	s.Event(trace.Event{Kind: ir.Ret, Taken: true, PC: 500, Target: 20, Fall: 504})
	// Return with empty stack: mispredict.
	s.Event(trace.Event{Kind: ir.Ret, Taken: true, PC: 504, Target: 20, Fall: 508})

	r := s.Result()
	if r.Events != 7 {
		t.Errorf("Events = %d, want 7", r.Events)
	}
	if r.Misfetches != 2 {
		t.Errorf("Misfetches = %d, want 2 (br + call)", r.Misfetches)
	}
	if r.Mispredicts != 3 {
		t.Errorf("Mispredicts = %d, want 3 (taken cond + ijump + bad ret)", r.Mispredicts)
	}
	if r.Cond != 2 || r.CondCorrect != 1 || r.CondTaken != 1 {
		t.Errorf("cond stats = %d/%d/%d, want 2/1/1", r.Cond, r.CondCorrect, r.CondTaken)
	}
	if r.Rets != 2 || r.RetsCorrect != 1 {
		t.Errorf("ret stats = %d/%d, want 2/1", r.Rets, r.RetsCorrect)
	}
	if got := r.BEP(1, 4); got != 2*1+3*4 {
		t.Errorf("BEP = %d, want 14", got)
	}
}

func TestStaticSimBTFNTMisfetchOnCorrectTaken(t *testing.T) {
	s := NewStaticSim(BTFNT{})
	// Backward taken branch: predicted correctly but still a misfetch.
	s.Event(trace.Event{Kind: ir.CondBr, Taken: true, PC: 100, Target: 50, TakenTarget: 50, Fall: 104})
	r := s.Result()
	if r.Misfetches != 1 || r.Mispredicts != 0 {
		t.Errorf("misfetch/mispredict = %d/%d, want 1/0", r.Misfetches, r.Mispredicts)
	}
}

func TestBTBSimConditional(t *testing.T) {
	s := NewBTBSim(64, 2)
	ev := trace.Event{Kind: ir.CondBr, Taken: true, PC: 0x1000, Target: 0x800, Fall: 0x1004}
	// First encounter: miss, taken -> mispredict + insert.
	s.Event(ev)
	r := s.Result()
	if r.Mispredicts != 1 {
		t.Fatalf("first taken cond: mispredicts = %d, want 1", r.Mispredicts)
	}
	// Second encounter: hit, counter predicts taken, target correct -> free.
	s.Event(ev)
	r = s.Result()
	if r.Mispredicts != 1 || r.Misfetches != 0 {
		t.Errorf("second taken cond: mf/mp = %d/%d, want 0/1", r.Misfetches, r.Mispredicts)
	}
	if r.CondCorrect != 1 {
		t.Errorf("CondCorrect = %d, want 1", r.CondCorrect)
	}
	// Not-taken now: hit but counter says taken -> mispredict.
	s.Event(trace.Event{Kind: ir.CondBr, Taken: false, PC: 0x1000, Target: 0x800, Fall: 0x1004})
	if got := s.Result().Mispredicts; got != 2 {
		t.Errorf("mispredicts = %d, want 2", got)
	}
}

func TestBTBSimNotTakenMissIsFree(t *testing.T) {
	s := NewBTBSim(64, 2)
	s.Event(trace.Event{Kind: ir.CondBr, Taken: false, PC: 0x1000, Target: 0x800, Fall: 0x1004})
	r := s.Result()
	if r.Misfetches != 0 || r.Mispredicts != 0 {
		t.Errorf("mf/mp = %d/%d, want 0/0", r.Misfetches, r.Mispredicts)
	}
	// Not-taken branches are not inserted.
	if s.BTB().Hits != 0 || s.BTB().Lookups != 1 {
		t.Errorf("lookups/hits = %d/%d, want 1/0", s.BTB().Lookups, s.BTB().Hits)
	}
}

func TestBTBSimUncondAndCall(t *testing.T) {
	s := NewBTBSim(64, 2)
	br := trace.Event{Kind: ir.Br, Taken: true, PC: 0x2000, Target: 0x3000, Fall: 0x2004}
	s.Event(br) // miss: misfetch
	s.Event(br) // hit: free
	r := s.Result()
	if r.Misfetches != 1 {
		t.Errorf("misfetches = %d, want 1", r.Misfetches)
	}
	call := trace.Event{Kind: ir.Call, Taken: true, PC: 0x2004, Target: 0x4000, Fall: 0x2008}
	s.Event(call) // miss: misfetch, push
	s.Event(trace.Event{Kind: ir.Ret, Taken: true, PC: 0x4004, Target: 0x2008, Fall: 0x4008})
	r = s.Result()
	if r.Misfetches != 2 {
		t.Errorf("misfetches = %d, want 2", r.Misfetches)
	}
	if r.RetsCorrect != 1 {
		t.Errorf("RetsCorrect = %d, want 1", r.RetsCorrect)
	}
}

func TestBTBSimIndirect(t *testing.T) {
	s := NewBTBSim(64, 2)
	ij := trace.Event{Kind: ir.IJump, Taken: true, PC: 0x5000, Target: 0x6000, Fall: 0x5004}
	s.Event(ij) // miss -> mispredict
	s.Event(ij) // hit, same target -> free
	r := s.Result()
	if r.Mispredicts != 1 {
		t.Errorf("mispredicts = %d, want 1", r.Mispredicts)
	}
	// Target changes -> mispredict, entry retargeted.
	s.Event(trace.Event{Kind: ir.IJump, Taken: true, PC: 0x5000, Target: 0x7000, Fall: 0x5004})
	s.Event(trace.Event{Kind: ir.IJump, Taken: true, PC: 0x5000, Target: 0x7000, Fall: 0x5004})
	r = s.Result()
	if r.Mispredicts != 2 {
		t.Errorf("mispredicts = %d, want 2 after retarget", r.Mispredicts)
	}
}

func TestNewSimulatorRegistry(t *testing.T) {
	prog, pf := likelyFixture()
	for _, id := range AllArchs() {
		sim, err := NewSimulator(id, prog, pf)
		if err != nil {
			t.Errorf("NewSimulator(%s): %v", id, err)
			continue
		}
		if sim.Name() == "" {
			t.Errorf("%s: empty name", id)
		}
		sim.Event(trace.Event{Kind: ir.CondBr, Taken: true, PC: 0x1000, Target: 0x800, Fall: 0x1004})
		if sim.Result().Events != 1 {
			t.Errorf("%s: event not counted", id)
		}
		sim.Reset()
		if sim.Result().Events != 0 {
			t.Errorf("%s: Reset did not clear result", id)
		}
	}
	if _, err := NewSimulator("nonsense", nil, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown architecture") {
		t.Errorf("unknown arch error = %v", err)
	}
	if _, err := NewSimulator(ArchLikely, nil, nil); err == nil {
		t.Error("LIKELY without profile should error")
	}
}

func TestResultCondAccuracy(t *testing.T) {
	r := Result{Cond: 10, CondCorrect: 9}
	if got := r.CondAccuracy(); got != 0.9 {
		t.Errorf("CondAccuracy = %v, want 0.9", got)
	}
	var zero Result
	if zero.CondAccuracy() != 0 {
		t.Error("zero CondAccuracy should be 0")
	}
}

func TestHeuristicLikely(t *testing.T) {
	// Backward branch -> taken; bne -> taken; beq -> not taken.
	p := &ir.Proc{Name: "m", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpBeq, Rd: 1, Rs: 2, TargetBlock: 2}}},
		{Instrs: []ir.Instr{{Op: ir.OpBne, Rd: 1, Rs: 2, TargetBlock: 2}}},
		{Instrs: []ir.Instr{{Op: ir.OpBeqz, Rd: 1, TargetBlock: 0}}}, // backward
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "h", Procs: []*ir.Proc{p}}
	prog.AssignAddresses(0x1000)
	l := NewHeuristicLikely(prog)
	if l.Sites() != 3 {
		t.Fatalf("Sites = %d, want 3", l.Sites())
	}
	if l.Predict(trace.Event{PC: p.Blocks[0].TermAddr()}) {
		t.Error("forward beq should be predicted not taken")
	}
	if !l.Predict(trace.Event{PC: p.Blocks[1].TermAddr()}) {
		t.Error("bne should be predicted taken")
	}
	if !l.Predict(trace.Event{PC: p.Blocks[2].TermAddr()}) {
		t.Error("backward branch should be predicted taken")
	}
}
