package predict

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
)

// LocalPHT is a two-level predictor with per-branch history (Yeh & Patt's
// PAg): a branch history table keyed by the site address records the last
// historyBits outcomes of that branch, and the pattern selects a 2-bit
// counter in a shared pattern table. The paper cites this family of
// predictors; it is provided as an extension architecture beyond the two
// PHTs of Table 4 and is useful for checking that alignment keeps helping
// as the direction predictor gets stronger.
type LocalPHT struct {
	histories []uint16
	counters  []Counter2
	histMask  uint16
	idxMask   uint64
	bits      uint
}

// NewLocalPHT returns a PAg predictor with the given history-table and
// pattern-table sizes (both powers of two) and history length
// log2(patternEntries).
func NewLocalPHT(historyEntries, patternEntries int) *LocalPHT {
	checkPow2(historyEntries, "local history entries")
	checkPow2(patternEntries, "pattern entries")
	bits := uint(0)
	for 1<<bits < patternEntries {
		bits++
	}
	if bits > 16 {
		panic("predict: local history length limited to 16 bits")
	}
	p := &LocalPHT{
		histories: make([]uint16, historyEntries),
		counters:  make([]Counter2, patternEntries),
		histMask:  uint16(patternEntries - 1),
		idxMask:   uint64(historyEntries - 1),
		bits:      bits,
	}
	p.Reset()
	return p
}

func (p *LocalPHT) slot(pc uint64) uint64 { return (pc / ir.InstrBytes) & p.idxMask }

// Predict implements DirectionPredictor.
func (p *LocalPHT) Predict(ev trace.Event) bool {
	h := p.histories[p.slot(ev.PC)] & p.histMask
	return p.counters[h].Taken()
}

// Update implements DirectionPredictor.
func (p *LocalPHT) Update(ev trace.Event) {
	s := p.slot(ev.PC)
	h := p.histories[s] & p.histMask
	p.counters[h] = p.counters[h].Update(ev.Taken)
	bit := uint16(0)
	if ev.Taken {
		bit = 1
	}
	p.histories[s] = ((p.histories[s] << 1) | bit) & p.histMask
}

// Name implements DirectionPredictor.
func (p *LocalPHT) Name() string {
	return fmt.Sprintf("pht-local-%dx%d", len(p.histories), len(p.counters))
}

// Reset implements DirectionPredictor.
func (p *LocalPHT) Reset() {
	for i := range p.histories {
		p.histories[i] = 0
	}
	for i := range p.counters {
		p.counters[i] = Counter2Init
	}
}

// ArchPHTLocal is the extension PAg architecture (1024-entry history table,
// 4096-entry pattern table).
const ArchPHTLocal ArchID = "pht-local"

func init() {
	spec := KernelSpec{Kind: KernelPHTLocal, PHTEntries: 4096, LocalHistEntries: 1024}
	Register(Desc{
		ID: ArchPHTLocal, Class: ClassPHT, Grid: GridExtension, Order: 0,
		CostGroup: CostPHT,
		Kernel:    spec,
		New: func(*ir.Program, *profile.Profile) (Simulator, error) {
			return NewStaticSim(NewLocalPHT(spec.LocalHistEntries, spec.PHTEntries)), nil
		},
	})
}
