package cfgio

import (
	"fmt"
	"regexp"
	"sort"

	"balign/internal/ir"
	"balign/internal/profile"
)

// Import decodes a CFG document in either encoding (auto-detected: JSON when
// the first non-space byte is '{', DOT otherwise) and builds a validated
// ir.Program plus its profile.Profile, using default Options.
func Import(data []byte) (*ir.Program, *profile.Profile, error) {
	return ImportOptions(data, Options{})
}

// ImportOptions is Import with explicit validation options.
func ImportOptions(data []byte, opt Options) (*ir.Program, *profile.Profile, error) {
	if looksJSON(data) {
		return importJSONOptions(data, opt)
	}
	return importDOTOptions(data, opt)
}

// identRe matches names the asm text form can round-trip: they must survive
// as labels, proc names and branch operands.
var identRe = regexp.MustCompile(`^[A-Za-z_.][A-Za-z0-9_.]*$`)

// canonLabelRe matches the canonical ".bN" labels the exporter assigns to
// unlabelled blocks; user labels may only use the form for their own index.
var canonLabelRe = regexp.MustCompile(`^\.b([0-9]+)$`)

func checkName(format string, line int, elem, what, name string) error {
	if name == "" {
		return errAt(format, line, elem, "empty %s name", what)
	}
	if len(name) > maxNameLen {
		return errAt(format, line, elem, "%s name longer than %d bytes", what, maxNameLen)
	}
	if !identRe.MatchString(name) {
		return errAt(format, line, elem, "invalid %s name %q (want [A-Za-z_.][A-Za-z0-9_.]*)", what, name)
	}
	return nil
}

// termSlots returns the instruction slots a terminator of the given kind
// occupies, or -1 for an unknown kind.
func termSlots(kind string) int {
	switch kind {
	case kindCond, kindBr, kindIJump, kindRet, kindHalt:
		return 1
	case kindFall:
		return 0
	}
	return -1
}

// build validates d and lowers it to a program and profile.
func build(d *doc, opt Options) (*ir.Program, *profile.Profile, error) {
	if len(d.procs) == 0 {
		return nil, nil, errAt(d.format, 0, "", "document has no procedures")
	}
	if len(d.procs) > maxProcs {
		return nil, nil, errAt(d.format, 0, "", "too many procedures (%d > %d)", len(d.procs), maxProcs)
	}
	if d.name != "" {
		if err := checkName(d.format, 0, "", "program", d.name); err != nil {
			return nil, nil, err
		}
	}
	if d.memWords < 0 {
		return nil, nil, errAt(d.format, 0, "", "negative mem_words %d", d.memWords)
	}
	if d.memWords == 0 {
		d.memWords = 1024 // the asm default, so text round-trips are stable
	}

	procIdx := make(map[string]int, len(d.procs))
	for i := range d.procs {
		dp := &d.procs[i]
		if err := checkName(d.format, dp.line, procElem(dp.name), "procedure", dp.name); err != nil {
			return nil, nil, err
		}
		if _, dup := procIdx[dp.name]; dup {
			return nil, nil, errAt(d.format, dp.line, procElem(dp.name), "duplicate procedure name")
		}
		procIdx[dp.name] = i
	}

	entry := 0
	if d.entry != "" {
		idx, ok := procIdx[d.entry]
		if !ok {
			return nil, nil, errAt(d.format, 0, "", "entry procedure %q not defined", d.entry)
		}
		entry = idx
	}

	totalSlots := 0
	for pi := range d.procs {
		dp := &d.procs[pi]
		if err := checkProc(d.format, dp, procIdx, &totalSlots); err != nil {
			return nil, nil, err
		}
	}
	if opt.slack() >= 0 {
		if err := checkWeights(d, entry, opt.slack()); err != nil {
			return nil, nil, err
		}
	}

	prog := &ir.Program{Name: d.name, MemWords: d.memWords, EntryProc: entry}
	pf := profile.New(d.name)
	for pi := range d.procs {
		dp := &d.procs[pi]
		p := &ir.Proc{Name: dp.name}
		pp := pf.Proc(dp.name)
		pp.EntryCount = dp.entryCount
		for bi := range dp.blocks {
			db := &dp.blocks[bi]
			b := &ir.Block{Label: db.label, Orig: ir.BlockID(bi)}
			if b.Label == "" {
				b.Label = fmt.Sprintf(".b%d", bi)
			}
			fill := db.size - len(db.calls) - termSlots(db.kind)
			for i := 0; i < fill; i++ {
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpNop})
			}
			for _, callee := range db.calls {
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpCall, TargetProc: procIdx[callee]})
			}
			switch db.kind {
			case kindCond:
				taken, fall := condEdges(db)
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpBeqz, Rd: 1, TargetBlock: ir.BlockID(taken.to)})
				pp.Branches[ir.BlockID(bi)] = profile.BranchCount{Taken: taken.weight, Fall: fallWeight(fall)}
				pp.Edges[profile.Edge{From: ir.BlockID(bi), To: ir.BlockID(taken.to)}] += taken.weight
				if fall != nil {
					pp.Edges[profile.Edge{From: ir.BlockID(bi), To: ir.BlockID(fall.to)}] += fall.weight
				}
			case kindBr:
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpBr, TargetBlock: ir.BlockID(db.edges[0].to)})
				pp.Edges[profile.Edge{From: ir.BlockID(bi), To: ir.BlockID(db.edges[0].to)}] += db.edges[0].weight
			case kindIJump:
				in := ir.Instr{Op: ir.OpIJump, Rd: 1}
				for _, e := range db.edges {
					in.Targets = append(in.Targets, ir.BlockID(e.to))
					pp.Edges[profile.Edge{From: ir.BlockID(bi), To: ir.BlockID(e.to)}] += e.weight
				}
				b.Instrs = append(b.Instrs, in)
			case kindRet:
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpRet})
			case kindHalt:
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpHalt})
			case kindFall:
				pp.Edges[profile.Edge{From: ir.BlockID(bi), To: ir.BlockID(db.edges[0].to)}] += db.edges[0].weight
			}
			p.Blocks = append(p.Blocks, b)
		}
		prog.Procs = append(prog.Procs, p)
	}

	if d.instrs > 0 {
		pf.Instrs = d.instrs
	} else {
		pf.Instrs = estimateInstrs(d, entry)
	}

	prog.AssignAddresses(0x1000)
	if err := prog.Validate(); err != nil {
		// The checks above should catch everything first; this is a backstop
		// so no invalid program ever escapes the importer.
		return nil, nil, errAt(d.format, 0, "", "built program failed validation: %v", err)
	}
	return prog, pf, nil
}

// condEdges returns the taken edge and the optional fall edge of a validated
// cond block.
func condEdges(db *docBlock) (taken, fall *docEdge) {
	for i := range db.edges {
		if db.edges[i].taken {
			taken = &db.edges[i]
		} else {
			fall = &db.edges[i]
		}
	}
	return taken, fall
}

func fallWeight(e *docEdge) uint64 {
	if e == nil {
		return 0
	}
	return e.weight
}

// checkProc validates one procedure's structure: dense labelled blocks,
// per-kind edge shape, resolvable calls, reachability from block 0.
func checkProc(format string, dp *docProc, procIdx map[string]int, totalSlots *int) error {
	pe := procElem(dp.name)
	if len(dp.blocks) == 0 {
		return errAt(format, dp.line, pe, "procedure has no blocks")
	}
	if len(dp.blocks) > maxBlocksPerProc {
		return errAt(format, dp.line, pe, "too many blocks (%d > %d)", len(dp.blocks), maxBlocksPerProc)
	}
	labels := make(map[string]int, len(dp.blocks))
	for bi := range dp.blocks {
		db := &dp.blocks[bi]
		be := blockElem(dp.name, bi)
		ts := termSlots(db.kind)
		if ts < 0 {
			return errAt(format, db.line, be, "unknown block kind %q (want cond|br|ijump|ret|halt|fall)", db.kind)
		}
		if db.size < 0 {
			return errAt(format, db.line, be, "negative block size %d", db.size)
		}
		if db.size < len(db.calls)+ts {
			return errAt(format, db.line, be, "block size %d too small for %d call(s) and a %s terminator",
				db.size, len(db.calls), db.kind)
		}
		*totalSlots += db.size
		if *totalSlots > maxTotalSlots {
			return errAt(format, db.line, be, "program exceeds %d instruction slots", maxTotalSlots)
		}
		if db.label != "" {
			if err := checkName(format, db.line, be, "label", db.label); err != nil {
				return err
			}
			if m := canonLabelRe.FindStringSubmatch(db.label); m != nil && m[1] != fmt.Sprint(bi) {
				return errAt(format, db.line, be, "label %q uses the reserved .bN form for a different block", db.label)
			}
			if prev, dup := labels[db.label]; dup {
				return errAt(format, db.line, be, "duplicate label %q (also on block %d)", db.label, prev)
			}
			labels[db.label] = bi
		}
		for _, callee := range db.calls {
			if _, ok := procIdx[callee]; !ok {
				return errAt(format, db.line, be, "call to undefined procedure %q", callee)
			}
		}
		if len(db.edges) > maxEdgesPerBlock {
			return errAt(format, db.line, be, "too many edges (%d > %d)", len(db.edges), maxEdgesPerBlock)
		}
		if err := checkEdges(format, dp, bi); err != nil {
			return err
		}
	}
	// Implicit-label collisions: an explicit label may not shadow nothing —
	// the canonical ".bN" forms of *unlabelled* blocks are assigned at build
	// time, so an explicit ".bN" naming an unlabelled block N is fine (it is
	// exactly what the exporter writes); the per-index check above already
	// rejected mismatched uses.

	// Reachability from the procedure's entry block over static edges.
	seen := make([]bool, len(dp.blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range dp.blocks[bi].edges {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	for bi, ok := range seen {
		if !ok {
			return errAt(format, dp.blocks[bi].line, blockElem(dp.name, bi),
				"block unreachable from procedure entry block 0")
		}
	}
	return nil
}

// checkEdges validates the out-edges of block bi against its kind.
func checkEdges(format string, dp *docProc, bi int) error {
	db := &dp.blocks[bi]
	type key struct {
		to    int
		taken bool
	}
	seen := make(map[key]int, len(db.edges))
	for i := range db.edges {
		e := &db.edges[i]
		ee := edgeElem(dp.name, bi, e.to)
		if e.to < 0 || e.to >= len(dp.blocks) {
			return errAt(format, e.line, ee, "edge target out of range (procedure has %d blocks)", len(dp.blocks))
		}
		if e.taken && db.kind != kindCond {
			return errAt(format, e.line, ee, "taken flag on an edge of a %s block", db.kind)
		}
		if _, dup := seen[key{e.to, e.taken}]; dup {
			return errAt(format, e.line, ee, "duplicate edge")
		}
		seen[key{e.to, e.taken}] = i
	}
	be := blockElem(dp.name, bi)
	switch db.kind {
	case kindCond:
		var taken, fall int
		for i := range db.edges {
			if db.edges[i].taken {
				taken++
			} else {
				fall++
				if db.edges[i].to != bi+1 {
					return errAt(format, db.edges[i].line, edgeElem(dp.name, bi, db.edges[i].to),
						"cond fall-through edge must target the next block (%d)", bi+1)
				}
			}
		}
		if taken != 1 {
			return errAt(format, db.line, be, "cond block needs exactly one taken edge, got %d", taken)
		}
		if fall > 1 {
			return errAt(format, db.line, be, "cond block has %d fall-through edges", fall)
		}
		if bi+1 >= len(dp.blocks) {
			return errAt(format, db.line, be, "cond block cannot be the last block (it falls through)")
		}
	case kindBr:
		if len(db.edges) != 1 {
			return errAt(format, db.line, be, "br block needs exactly one edge, got %d", len(db.edges))
		}
	case kindIJump:
		if len(db.edges) == 0 {
			return errAt(format, db.line, be, "ijump block needs at least one edge")
		}
		// Canonical target order: by destination.
		sort.SliceStable(db.edges, func(i, j int) bool { return db.edges[i].to < db.edges[j].to })
	case kindRet, kindHalt:
		if len(db.edges) != 0 {
			return errAt(format, db.line, be, "%s block must have no edges, got %d", db.kind, len(db.edges))
		}
	case kindFall:
		if len(db.edges) != 1 || db.edges[0].to != bi+1 {
			return errAt(format, db.line, be, "fall block needs exactly one edge to the next block (%d)", bi+1)
		}
		if bi+1 >= len(dp.blocks) {
			return errAt(format, db.line, be, "fall block cannot be the last block")
		}
	}
	return nil
}

// inFlow computes per-block inflow (incoming edge weights, plus the
// procedure entry count at block 0).
func inFlow(dp *docProc) []uint64 {
	in := make([]uint64, len(dp.blocks))
	in[0] += dp.entryCount
	for bi := range dp.blocks {
		for _, e := range dp.blocks[bi].edges {
			in[e.to] += e.weight
		}
	}
	return in
}

// checkWeights enforces flow conservation: per block, inflow must match
// outflow within slack (sinks exempt), and per non-entry procedure the
// entry_count must match the weighted call-site total within slack.
func checkWeights(d *doc, entry int, slack float64) error {
	within := func(a, b uint64) bool {
		hi, lo := a, b
		if hi < lo {
			hi, lo = lo, hi
		}
		tol := uint64(1) + uint64(slack*float64(hi))
		return hi-lo <= tol
	}

	// Weighted call totals per callee, accumulated across all procs.
	callFlow := make(map[string]uint64)
	for pi := range d.procs {
		dp := &d.procs[pi]
		in := inFlow(dp)
		for bi := range dp.blocks {
			db := &dp.blocks[bi]
			var out uint64
			for _, e := range db.edges {
				out += e.weight
			}
			switch db.kind {
			case kindRet, kindHalt:
				// Sinks: flow leaves the procedure here.
			default:
				if !within(in[bi], out) {
					return errAt(d.format, db.line, blockElem(dp.name, bi),
						"weight not conserved: inflow %d vs outflow %d (slack %.4g)", in[bi], out, slack)
				}
			}
			for _, callee := range db.calls {
				callFlow[callee] += in[bi]
			}
		}
	}
	for pi := range d.procs {
		if pi == entry {
			// The entry procedure is additionally invoked by program starts,
			// which the document does not model; skip its call-count check.
			continue
		}
		dp := &d.procs[pi]
		if got := callFlow[dp.name]; !within(got, dp.entryCount) {
			return errAt(d.format, dp.line, procElem(dp.name),
				"entry_count %d does not match weighted call-site total %d (slack %.4g)",
				dp.entryCount, got, slack)
		}
	}
	return nil
}

// estimateInstrs derives a deterministic executed-instruction total from the
// profile when the document does not carry one: each block executes its full
// slot count once per inflow.
func estimateInstrs(d *doc, entry int) uint64 {
	var total uint64
	for pi := range d.procs {
		dp := &d.procs[pi]
		in := inFlow(dp)
		if pi == entry && dp.entryCount == 0 {
			// Give the entry procedure at least one pass so a count-free
			// document still yields a non-zero budget.
			in[0]++
		}
		for bi := range dp.blocks {
			total += in[bi] * uint64(dp.blocks[bi].size)
		}
	}
	return total
}

// docFromProgram lowers a program + profile back to the shared document
// form, canonically ordered; the encoders render it byte-stably.
func docFromProgram(prog *ir.Program, pf *profile.Profile) (*doc, error) {
	d := &doc{
		name:     prog.Name,
		memWords: prog.MemWords,
		instrs:   pf.Instrs,
	}
	if ep := prog.Proc(prog.EntryProc); ep != nil {
		d.entry = ep.Name
	} else {
		return nil, fmt.Errorf("cfgio: export: entry proc %d out of range", prog.EntryProc)
	}
	for _, p := range prog.Procs {
		pp := pf.Procs[p.Name]
		if pp == nil {
			pp = profile.NewProcProfile()
		}
		dp := docProc{name: p.Name, entryCount: pp.EntryCount}
		for bi, b := range p.Blocks {
			db := docBlock{size: len(b.Instrs)}
			db.label = b.Label
			if db.label == "" {
				db.label = fmt.Sprintf(".b%d", bi)
			}
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Kind() == ir.Call {
					cp := prog.Proc(in.TargetProc)
					if cp == nil {
						return nil, fmt.Errorf("cfgio: export: proc %q block %d: call target %d out of range",
							p.Name, bi, in.TargetProc)
					}
					db.calls = append(db.calls, cp.Name)
				}
			}
			term, hasTerm := b.Terminator()
			switch {
			case !hasTerm:
				db.kind = kindFall
				db.edges = append(db.edges, docEdge{
					to:     bi + 1,
					weight: pp.Weight(ir.BlockID(bi), ir.BlockID(bi+1)),
				})
			case term.Kind() == ir.CondBr:
				db.kind = kindCond
				bc := pp.Branches[ir.BlockID(bi)]
				if bc.Fall > 0 {
					db.edges = append(db.edges, docEdge{to: bi + 1, weight: bc.Fall})
				}
				db.edges = append(db.edges, docEdge{to: int(term.TargetBlock), weight: bc.Taken, taken: true})
			case term.Kind() == ir.Br:
				db.kind = kindBr
				db.edges = append(db.edges, docEdge{
					to:     int(term.TargetBlock),
					weight: pp.Weight(ir.BlockID(bi), term.TargetBlock),
				})
			case term.Kind() == ir.IJump:
				db.kind = kindIJump
				seen := map[int]bool{}
				for _, t := range term.Targets {
					if seen[int(t)] {
						continue
					}
					seen[int(t)] = true
					db.edges = append(db.edges, docEdge{to: int(t), weight: pp.Weight(ir.BlockID(bi), t)})
				}
				sort.Slice(db.edges, func(i, j int) bool { return db.edges[i].to < db.edges[j].to })
			case term.Kind() == ir.Ret:
				db.kind = kindRet
			case term.Kind() == ir.Halt:
				db.kind = kindHalt
			}
			dp.blocks = append(dp.blocks, db)
		}
		d.procs = append(d.procs, dp)
	}
	return d, nil
}
