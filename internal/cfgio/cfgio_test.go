package cfgio

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"balign/internal/asm"
	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
)

// demoJSON is a small but complete document: two procedures, every block
// kind, a mid-block call, exactly conserved weights.
const demoJSON = `{
  "name": "demo",
  "entry": "main",
  "procs": [
    {"name": "main", "entry_count": 100, "blocks": [
      {"label": "top", "size": 3, "kind": "cond",
       "edges": [{"to": 1, "weight": 600}, {"to": 2, "weight": 400, "taken": true}]},
      {"size": 3, "kind": "br", "calls": ["helper"], "edges": [{"to": 3, "weight": 600}]},
      {"size": 2, "kind": "fall", "edges": [{"to": 3, "weight": 400}]},
      {"size": 4, "kind": "cond",
       "edges": [{"to": 4, "weight": 100}, {"to": 0, "weight": 900, "taken": true}]},
      {"size": 1, "kind": "halt"}
    ]},
    {"name": "helper", "entry_count": 600, "blocks": [
      {"size": 2, "kind": "cond",
       "edges": [{"to": 1, "weight": 500}, {"to": 2, "weight": 100, "taken": true}]},
      {"size": 2, "kind": "ijump", "edges": [{"to": 2, "weight": 500}]},
      {"size": 1, "kind": "ret"}
    ]}
  ]
}`

func mustImport(t *testing.T, data string) (*ir.Program, *profile.Profile) {
	t.Helper()
	prog, pf, err := Import([]byte(data))
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	return prog, pf
}

func TestImportJSONBuildsProgramAndProfile(t *testing.T) {
	prog, pf, err := ImportJSON([]byte(demoJSON))
	if err != nil {
		t.Fatalf("ImportJSON: %v", err)
	}
	if prog.Name != "demo" || len(prog.Procs) != 2 {
		t.Fatalf("got program %q with %d procs", prog.Name, len(prog.Procs))
	}
	main := prog.Procs[0]
	if len(main.Blocks) != 5 {
		t.Fatalf("main has %d blocks, want 5", len(main.Blocks))
	}
	if main.Blocks[0].Label != "top" || main.Blocks[1].Label != ".b1" {
		t.Fatalf("labels = %q, %q", main.Blocks[0].Label, main.Blocks[1].Label)
	}
	// Block 1: size 3 = 1 nop filler + call + br.
	b1 := main.Blocks[1]
	if len(b1.Instrs) != 3 || b1.Instrs[0].Op != ir.OpNop || b1.Instrs[1].Op != ir.OpCall || b1.Instrs[2].Op != ir.OpBr {
		t.Fatalf("block 1 instrs = %+v", b1.Instrs)
	}
	pm := pf.Procs["main"]
	if pm == nil {
		t.Fatal("no main profile")
	}
	if pm.EntryCount != 100 {
		t.Fatalf("main entry count = %d", pm.EntryCount)
	}
	if bc := pm.Branches[0]; bc.Taken != 400 || bc.Fall != 600 {
		t.Fatalf("main block 0 branch = %+v", bc)
	}
	if w := pm.Weight(3, 0); w != 900 {
		t.Fatalf("edge 3->0 weight = %d", w)
	}
	// instrs omitted from the document: the deterministic estimate.
	const wantInstrs = 1000*3 + 600*3 + 400*2 + 1000*4 + 100*1 + 600*2 + 500*2 + 600*1
	if pf.Instrs != wantInstrs {
		t.Fatalf("estimated instrs = %d, want %d", pf.Instrs, wantInstrs)
	}
}

// TestImportExportRoundTripOracle is the suite-smoke importer oracle: both
// encodings re-import their own canonical export byte-stably, cross-encode
// consistently, and survive a round-trip through the asm text form. It runs
// over the in-package demo document and the committed real-CFG fixture (the
// pprof-derived Go runtime scan loop the cmd golden tests use).
func TestImportExportRoundTripOracle(t *testing.T) {
	t.Run("demo", func(t *testing.T) { roundTripOracle(t, demoJSON) })
	t.Run("fixture", func(t *testing.T) {
		data, err := os.ReadFile("../../testdata/cfg/go_scanobject.dot")
		if err != nil {
			t.Fatal(err)
		}
		roundTripOracle(t, string(data))
	})
}

func roundTripOracle(t *testing.T, doc string) {
	prog, pf := mustImport(t, doc)

	j1, err := ExportJSON(prog, pf)
	if err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	d1, err := ExportDOT(prog, pf)
	if err != nil {
		t.Fatalf("ExportDOT: %v", err)
	}

	// JSON canonical loop.
	prog2, pf2, err := Import(j1)
	if err != nil {
		t.Fatalf("re-import JSON: %v\n%s", err, j1)
	}
	j2, err := ExportJSON(prog2, pf2)
	if err != nil {
		t.Fatalf("re-export JSON: %v", err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSON round-trip not byte-stable:\n--- first\n%s\n--- second\n%s", j1, j2)
	}

	// DOT canonical loop.
	prog3, pf3, err := Import(d1)
	if err != nil {
		t.Fatalf("re-import DOT: %v\n%s", err, d1)
	}
	d2, err := ExportDOT(prog3, pf3)
	if err != nil {
		t.Fatalf("re-export DOT: %v", err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatalf("DOT round-trip not byte-stable:\n--- first\n%s\n--- second\n%s", d1, d2)
	}

	// Cross-encoding: the DOT-imported program exports the same JSON.
	j3, err := ExportJSON(prog3, pf3)
	if err != nil {
		t.Fatalf("ExportJSON of DOT import: %v", err)
	}
	if !bytes.Equal(j1, j3) {
		t.Fatalf("cross-encoding mismatch:\n--- via JSON\n%s\n--- via DOT\n%s", j1, j3)
	}

	// Round-trip through the asm text form. Assembly does not carry a
	// program name, so it is restored before comparing, like the kernel
	// builders do.
	text := prog.Format()
	prog4, err := asm.Assemble(text)
	if err != nil {
		t.Fatalf("Assemble(Format()): %v\n%s", err, text)
	}
	prog4.Name = prog.Name
	j4, err := ExportJSON(prog4, pf)
	if err != nil {
		t.Fatalf("ExportJSON after asm: %v", err)
	}
	if !bytes.Equal(j1, j4) {
		t.Fatalf("asm round-trip not byte-stable:\n--- direct\n%s\n--- via asm\n%s", j1, j4)
	}
	d4, err := ExportDOT(prog4, pf)
	if err != nil {
		t.Fatalf("ExportDOT after asm: %v", err)
	}
	if !bytes.Equal(d1, d4) {
		t.Fatalf("asm round-trip (DOT) not byte-stable")
	}
}

// TestImportedProgramWalks drives the imported program through the
// profile-faithful walker and checks the trace reflects the document's edge
// weights (the hot back-edge dominates).
func TestImportedProgramWalks(t *testing.T) {
	prog, pf := mustImport(t, demoJSON)
	walker := &trace.Walker{
		Prog:      prog,
		Model:     pf.Model(prog),
		Seed:      1,
		MaxInstrs: 50_000,
	}
	var conds, taken uint64
	instrs, runs := walker.Run(trace.SinkFunc(func(ev trace.Event) {
		if ev.Kind == ir.CondBr {
			conds++
			if ev.Taken {
				taken++
			}
		}
	}), nil)
	if instrs == 0 || runs == 0 {
		t.Fatalf("walker produced nothing: instrs=%d runs=%d", instrs, runs)
	}
	if conds == 0 {
		t.Fatal("no conditional events")
	}
	// Document taken rates: main/0 40%, main/3 90%, helper/0 ~17%; the trace
	// mix is dominated by the 90% loop branch, so overall well above 50%.
	rate := float64(taken) / float64(conds)
	if rate < 0.5 || rate > 0.9 {
		t.Fatalf("taken rate %.3f outside the profile-plausible band", rate)
	}
}

func TestImportErrors(t *testing.T) {
	// Each case is one malformed-input class; want is a substring of the
	// error. Cases marked wantLine expect a positioned DOT error; JSON cases
	// marked wantOffset expect a byte offset.
	cases := []struct {
		name       string
		in         string
		want       string
		wantElem   string
		wantLine   bool
		wantOffset bool
	}{
		{
			name:       "json syntax",
			in:         "{\n  \"procs\": [,\n}",
			want:       "invalid character",
			wantOffset: true,
		},
		{
			name:       "json wrong type",
			in:         `{"procs": [{"name": "m", "blocks": [{"size": "big", "kind": "halt"}]}]}`,
			want:       "cannot unmarshal",
			wantOffset: true,
		},
		{
			name:       "json unknown field",
			in:         `{"prox": 1}`,
			want:       "unknown field",
			wantOffset: true,
		},
		{
			name:       "json trailing garbage",
			in:         `{"procs": [{"name": "m", "blocks": [{"size": 1, "kind": "halt"}]}]} extra`,
			want:       "trailing data",
			wantOffset: true,
		},
		{
			name:       "json negative weight",
			in:         `{"procs": [{"name": "m", "blocks": [{"size": 1, "kind": "br", "edges": [{"to": 0, "weight": -5}]}]}]}`,
			want:       "cannot unmarshal",
			wantOffset: true,
		},
		{
			name: "no procs",
			in:   `{"procs": []}`,
			want: "no procedures",
		},
		{
			name:     "bad proc name",
			in:       `{"procs": [{"name": "bad name", "blocks": [{"size": 1, "kind": "halt"}]}]}`,
			want:     "invalid procedure name",
			wantElem: `proc "bad name"`,
		},
		{
			name: "duplicate proc",
			in: `{"procs": [{"name": "m", "blocks": [{"size": 1, "kind": "halt"}]},
			              {"name": "m", "blocks": [{"size": 1, "kind": "ret"}]}]}`,
			want:     "duplicate procedure",
			wantElem: `proc "m"`,
		},
		{
			name: "unknown entry",
			in:   `{"entry": "nope", "procs": [{"name": "m", "blocks": [{"size": 1, "kind": "halt"}]}]}`,
			want: `entry procedure "nope" not defined`,
		},
		{
			name:     "no blocks",
			in:       `{"procs": [{"name": "m", "blocks": []}]}`,
			want:     "no blocks",
			wantElem: `proc "m"`,
		},
		{
			name:     "unknown kind",
			in:       `{"procs": [{"name": "m", "blocks": [{"size": 1, "kind": "jump"}]}]}`,
			want:     `unknown block kind "jump"`,
			wantElem: `proc "m" block 0`,
		},
		{
			name:     "size too small",
			in:       `{"procs": [{"name": "m", "blocks": [{"size": 1, "kind": "halt", "calls": ["m"]}]}]}`,
			want:     "too small",
			wantElem: `proc "m" block 0`,
		},
		{
			name: "reserved label",
			in: `{"procs": [{"name": "m", "blocks": [
				{"label": ".b7", "size": 1, "kind": "fall", "edges": [{"to": 1, "weight": 1}]},
				{"size": 1, "kind": "halt"}]}]}`,
			want:     "reserved .bN form",
			wantElem: `proc "m" block 0`,
		},
		{
			name: "duplicate label",
			in: `{"procs": [{"name": "m", "blocks": [
				{"label": "x", "size": 1, "kind": "fall", "edges": [{"to": 1, "weight": 1}]},
				{"label": "x", "size": 1, "kind": "halt"}]}]}`,
			want: `duplicate label "x"`,
		},
		{
			name:     "undefined call",
			in:       `{"procs": [{"name": "m", "blocks": [{"size": 2, "kind": "halt", "calls": ["gone"]}]}]}`,
			want:     `undefined procedure "gone"`,
			wantElem: `proc "m" block 0`,
		},
		{
			name:     "edge out of range",
			in:       `{"procs": [{"name": "m", "blocks": [{"size": 1, "kind": "br", "edges": [{"to": 9, "weight": 1}]}]}]}`,
			want:     "out of range",
			wantElem: `proc "m" edge 0->9`,
		},
		{
			name: "taken flag on br",
			in:   `{"procs": [{"name": "m", "blocks": [{"size": 1, "kind": "br", "edges": [{"to": 0, "weight": 1, "taken": true}]}]}]}`,
			want: "taken flag on an edge of a br block",
		},
		{
			name: "cond missing taken edge",
			in: `{"procs": [{"name": "m", "blocks": [
				{"size": 1, "kind": "cond", "edges": [{"to": 1, "weight": 1}]},
				{"size": 1, "kind": "halt"}]}]}`,
			want:     "exactly one taken edge",
			wantElem: `proc "m" block 0`,
		},
		{
			name: "cond bad fall target",
			in: `{"procs": [{"name": "m", "blocks": [
				{"size": 1, "kind": "cond", "edges": [{"to": 2, "weight": 1}, {"to": 2, "weight": 1, "taken": true}]},
				{"size": 1, "kind": "fall", "edges": [{"to": 2, "weight": 0}]},
				{"size": 1, "kind": "halt"}]}]}`,
			want: "fall-through edge must target the next block",
		},
		{
			name: "cond last block",
			in: `{"procs": [{"name": "m", "blocks": [
				{"size": 1, "kind": "cond", "edges": [{"to": 0, "weight": 1, "taken": true}]}]}]}`,
			want: "cannot be the last block",
		},
		{
			name:     "ret with edges",
			in:       `{"procs": [{"name": "m", "blocks": [{"size": 1, "kind": "ret", "edges": [{"to": 0, "weight": 1}]}]}]}`,
			want:     "must have no edges",
			wantElem: `proc "m" block 0`,
		},
		{
			name: "duplicate edge",
			in: `{"procs": [{"name": "m", "blocks": [
				{"size": 1, "kind": "ijump", "edges": [{"to": 0, "weight": 1}, {"to": 0, "weight": 2}]}]}]}`,
			want: "duplicate edge",
		},
		{
			name: "unreachable block",
			in: `{"procs": [{"name": "m", "blocks": [
				{"size": 1, "kind": "halt"},
				{"size": 1, "kind": "ret"}]}]}`,
			want:     "unreachable",
			wantElem: `proc "m" block 1`,
		},
		{
			name: "weight not conserved",
			in: `{"procs": [{"name": "m", "entry_count": 100, "blocks": [
				{"size": 1, "kind": "cond", "edges": [{"to": 1, "weight": 5}, {"to": 1, "weight": 5, "taken": true}]},
				{"size": 1, "kind": "halt"}]}]}`,
			want:     "weight not conserved",
			wantElem: `proc "m" block 0`,
		},
		{
			name: "entry count mismatch",
			in: `{"procs": [
				{"name": "m", "entry_count": 10, "blocks": [{"size": 2, "kind": "halt", "calls": ["h"]}]},
				{"name": "h", "entry_count": 500, "blocks": [{"size": 1, "kind": "ret"}]}]}`,
			want:     "does not match weighted call-site total",
			wantElem: `proc "h"`,
		},
		{
			name:     "dot missing header",
			in:       `graph [entry="m"];`,
			want:     "digraph",
			wantLine: true,
		},
		{
			name: "dot unknown node attribute",
			in: "digraph \"d\" {\n" +
				"  subgraph \"cluster_m\" {\n" +
				"    \"m/0\" [kind=\"halt\", size=1, color=\"red\"];\n" +
				"  }\n}\n",
			want:     `unknown attribute "color"`,
			wantLine: true,
			wantElem: `proc "m" block 0`,
		},
		{
			name: "dot non-dense indices",
			in: "digraph \"d\" {\n" +
				"  subgraph \"cluster_m\" {\n" +
				"    \"m/0\" [kind=\"fall\", size=1];\n" +
				"    \"m/2\" [kind=\"halt\", size=1];\n" +
				"  }\n}\n",
			want:     "not dense",
			wantLine: true,
		},
		{
			name: "dot foreign node id",
			in: "digraph \"d\" {\n" +
				"  subgraph \"cluster_m\" {\n" +
				"    \"other/0\" [kind=\"halt\", size=1];\n" +
				"  }\n}\n",
			want:     "different procedure",
			wantLine: true,
		},
		{
			name: "dot bad weight",
			in: "digraph \"d\" {\n" +
				"  subgraph \"cluster_m\" {\n" +
				"    \"m/0\" [kind=\"br\", size=1];\n" +
				"    \"m/0\" -> \"m/0\" [weight=lots];\n" +
				"  }\n}\n",
			want:     `bad weight "lots"`,
			wantLine: true,
		},
		{
			name: "dot unterminated subgraph",
			in: "digraph \"d\" {\n" +
				"  subgraph \"cluster_m\" {\n" +
				"    \"m/0\" [kind=\"halt\", size=1];\n",
			want:     "unterminated subgraph",
			wantLine: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Import([]byte(tc.in))
			if err == nil {
				t.Fatalf("Import succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			var ce *Error
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not *cfgio.Error", err)
			}
			if tc.wantElem != "" && !strings.Contains(ce.Elem, tc.wantElem) {
				t.Fatalf("error elem %q does not contain %q (full: %v)", ce.Elem, tc.wantElem, err)
			}
			if tc.wantLine && ce.Line <= 0 {
				t.Fatalf("error has no line number: %v", err)
			}
			if tc.wantOffset && ce.Offset < 0 {
				t.Fatalf("error has no byte offset: %v", err)
			}
			if tc.wantOffset && ce.Line <= 0 {
				t.Fatalf("JSON decode error has no derived line: %v", err)
			}
		})
	}
}

// TestWeightSlackOption checks that sampled (slightly non-conserved)
// profiles import under the default slack and that the check can be
// disabled entirely.
func TestWeightSlackOption(t *testing.T) {
	// Inflow 1000 vs outflow 1006: within 1% + 1.
	loose := `{"procs": [{"name": "m", "entry_count": 1000, "blocks": [
		{"size": 1, "kind": "cond", "edges": [{"to": 1, "weight": 500}, {"to": 1, "weight": 506, "taken": true}]},
		{"size": 1, "kind": "halt"}]}]}`
	if _, _, err := Import([]byte(loose)); err != nil {
		t.Fatalf("default slack rejected a 0.6%% skew: %v", err)
	}
	// Inflow 1000 vs outflow 1200: rejected by default...
	broken := strings.Replace(loose, "506", "700", 1)
	if _, _, err := Import([]byte(broken)); err == nil {
		t.Fatal("default slack accepted a 20% skew")
	}
	// ...but importable with the check disabled.
	if _, _, err := ImportOptions([]byte(broken), Options{WeightSlack: -1}); err != nil {
		t.Fatalf("disabled slack still rejected: %v", err)
	}
}

// TestEmptyFallBlockRoundTrips pins the schema's one legal zero-size shape:
// a fall block with no calls, which is exactly what the aligner leaves
// behind when it removes a jump. The document must import to an empty
// ir.Block and survive both export encodings byte-stably.
func TestEmptyFallBlockRoundTrips(t *testing.T) {
	doc := `{"procs": [{"name": "m", "entry_count": 5, "blocks": [
		{"size": 0, "kind": "fall", "edges": [{"to": 1, "weight": 5}]},
		{"size": 1, "kind": "halt"}]}]}`
	prog, pf := mustImport(t, doc)
	if n := len(prog.Procs[0].Blocks[0].Instrs); n != 0 {
		t.Fatalf("empty fall block imported with %d instrs", n)
	}
	for _, export := range []struct {
		name string
		fn   func(*ir.Program, *profile.Profile) ([]byte, error)
	}{{"json", ExportJSON}, {"dot", ExportDOT}} {
		out, err := export.fn(prog, pf)
		if err != nil {
			t.Fatalf("%s export: %v", export.name, err)
		}
		prog2, pf2, err := Import(out)
		if err != nil {
			t.Fatalf("%s re-import: %v", export.name, err)
		}
		again, err := export.fn(prog2, pf2)
		if err != nil {
			t.Fatalf("%s re-export: %v", export.name, err)
		}
		if !bytes.Equal(out, again) {
			t.Errorf("%s export not byte-stable:\n got: %s\nwant: %s", export.name, again, out)
		}
	}
	// Zero size on a kind that needs a terminator slot stays an error, as
	// does an explicitly negative size.
	for _, bad := range []string{
		`{"procs": [{"name": "m", "blocks": [{"size": 0, "kind": "halt"}]}]}`,
		`{"procs": [{"name": "m", "blocks": [{"size": -1, "kind": "halt"}]}]}`,
	} {
		if _, _, err := Import([]byte(bad)); err == nil {
			t.Errorf("bad size accepted: %s", bad)
		}
	}
}
