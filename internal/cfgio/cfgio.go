// Package cfgio imports and exports control-flow graphs with edge profiles,
// opening the pipeline's front door to programs it did not invent: a CFG
// recovered from a real binary (a Go pprof profile, an LLVM BB-layout dump, a
// binary rewriter) can be fed to alignment without writing assembly by hand.
//
// Two interchange encodings are supported, both describing the same model —
// procedures of basic blocks with a size (instruction slots), a terminator
// kind, optional mid-block calls, and weighted outgoing edges:
//
//   - JSON: a single object {name, mem_words, entry, instrs, procs:[...]};
//     see the package tests and EXPERIMENTS.md for the full shape;
//   - DOT: a strict, line-oriented digraph subset (one cluster subgraph per
//     procedure, nodes "proc/idx" carrying [kind, size, label, calls]
//     attributes, edges carrying [weight, taken]) that also renders under
//     graphviz for visual inspection.
//
// Imports are validated structurally (dense block indices, per-kind edge
// shape, reachability from each procedure's entry block, resolvable call
// targets) and quantitatively (per-block weight conservation and call-count
// consistency within a configurable slack, since real profiles are sampled).
// The importer synthesizes an ir.Program whose block sizes, terminators and
// call sites match the document — filler slots become nops, conditional
// terminators become beqz — plus a profile.Profile carrying the edge
// weights, branch outcome splits and procedure entry counts. Imported
// programs are traced by the profile-faithful walker, exactly like the
// synthetic Table 2 workloads.
//
// Export is canonical: procedures and blocks in program order, every block
// explicitly labelled (defaulting to the ".bN" form ir printing uses), edges
// sorted fall-before-taken then by target. A canonical document re-imports
// to the same program and re-exports byte-identically, including after a
// round-trip through the internal/asm text form — the fuzz targets and the
// suite-smoke oracle enforce both loops.
package cfgio

import (
	"fmt"
	"strings"
)

// Structural limits applied before any allocation is sized by untrusted
// input. They are far above anything a real profile produces.
const (
	maxProcs         = 4096
	maxBlocksPerProc = 1 << 16
	maxEdgesPerBlock = 4096
	maxTotalSlots    = 1 << 22 // instruction slots program-wide
	maxNameLen       = 256
)

// DefaultWeightSlack is the default relative tolerance for the weight
// conservation checks. Real edge profiles are sampled, so per-block inflow
// and outflow rarely agree exactly; 1% plus one absolute count covers
// sampling skew without letting structurally broken profiles through.
const DefaultWeightSlack = 0.01

// Options tunes import validation.
type Options struct {
	// WeightSlack is the relative tolerance for weight conservation:
	// per-block |inflow-outflow| and per-procedure |callers-entry_count|
	// must not exceed max(1, WeightSlack*flow). Zero selects
	// DefaultWeightSlack; a negative value disables both checks.
	WeightSlack float64
}

func (o Options) slack() float64 {
	if o.WeightSlack == 0 {
		return DefaultWeightSlack
	}
	return o.WeightSlack
}

// Error describes an import failure with as much position information as the
// encoding provides: DOT errors carry the source line, JSON decode errors
// the byte offset (and derived line), and semantic errors from either
// encoding name the offending procedure/block/edge.
type Error struct {
	Format string // "json" or "dot"
	Line   int    // 1-based source line; 0 when unknown
	Offset int64  // byte offset into the input; -1 when unknown
	Elem   string // offending element, e.g. `proc "main" block 3 edge ->7`
	Msg    string
}

// Error renders the parts that are known, in a stable order.
func (e *Error) Error() string {
	var sb strings.Builder
	sb.WriteString("cfgio(")
	sb.WriteString(e.Format)
	sb.WriteString(")")
	if e.Line > 0 {
		fmt.Fprintf(&sb, ": line %d", e.Line)
	}
	if e.Offset >= 0 {
		fmt.Fprintf(&sb, ": byte %d", e.Offset)
	}
	if e.Elem != "" {
		sb.WriteString(": ")
		sb.WriteString(e.Elem)
	}
	sb.WriteString(": ")
	sb.WriteString(e.Msg)
	return sb.String()
}

// errAt builds a semantic Error (no byte offset; line when the encoding
// recorded one).
func errAt(format string, line int, elem, msg string, args ...any) error {
	return &Error{
		Format: format,
		Line:   line,
		Offset: -1,
		Elem:   elem,
		Msg:    fmt.Sprintf(msg, args...),
	}
}

// Block terminator kinds accepted by both encodings. "fall" marks a block
// with no terminator that flows into the next block.
const (
	kindCond  = "cond"
	kindBr    = "br"
	kindIJump = "ijump"
	kindRet   = "ret"
	kindHalt  = "halt"
	kindFall  = "fall"
)

// doc is the shared decoded form both encodings lower to; build.go turns it
// into an ir.Program + profile.Profile.
type doc struct {
	format   string
	name     string
	memWords int
	entry    string
	instrs   uint64
	procs    []docProc
}

type docProc struct {
	name       string
	entryCount uint64
	line       int
	blocks     []docBlock
}

type docBlock struct {
	label string
	size  int
	kind  string
	calls []string
	edges []docEdge
	line  int
}

type docEdge struct {
	to     int
	weight uint64
	taken  bool
	line   int
}

// elem naming helpers keep error text consistent across encodings.
func procElem(name string) string { return fmt.Sprintf("proc %q", name) }

func blockElem(proc string, id int) string { return fmt.Sprintf("proc %q block %d", proc, id) }

func edgeElem(proc string, from, to int) string {
	return fmt.Sprintf("proc %q edge %d->%d", proc, from, to)
}

// looksJSON reports whether data starts (after whitespace) with a JSON
// object opener.
func looksJSON(data []byte) bool {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}
