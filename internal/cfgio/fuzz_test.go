package cfgio

import (
	"bytes"
	"errors"
	"testing"
)

// checkImported asserts the fuzz invariants on a successful import: the
// program validates, and the canonical export re-imports and re-exports
// byte-identically in both encodings.
func checkImported(t *testing.T, data []byte) {
	t.Helper()
	prog, pf, err := Import(data)
	if err != nil {
		var ce *Error
		if !errors.As(err, &ce) {
			t.Fatalf("import error is %T, not *cfgio.Error: %v", err, err)
		}
		return
	}
	if prog == nil || pf == nil {
		t.Fatal("nil program/profile with nil error")
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("imported program fails validation: %v", err)
	}
	j1, err := ExportJSON(prog, pf)
	if err != nil {
		t.Fatalf("ExportJSON of imported program: %v", err)
	}
	prog2, pf2, err := Import(j1)
	if err != nil {
		t.Fatalf("canonical JSON export does not re-import: %v\n%s", err, j1)
	}
	j2, err := ExportJSON(prog2, pf2)
	if err != nil {
		t.Fatalf("re-export JSON: %v", err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSON export not byte-stable:\n--- first\n%s\n--- second\n%s", j1, j2)
	}
	d1, err := ExportDOT(prog, pf)
	if err != nil {
		t.Fatalf("ExportDOT of imported program: %v", err)
	}
	prog3, pf3, err := Import(d1)
	if err != nil {
		t.Fatalf("canonical DOT export does not re-import: %v\n%s", err, d1)
	}
	d2, err := ExportDOT(prog3, pf3)
	if err != nil {
		t.Fatalf("re-export DOT: %v", err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatalf("DOT export not byte-stable:\n--- first\n%s\n--- second\n%s", d1, d2)
	}
}

// FuzzImportCFG throws arbitrary bytes at the JSON importer (and, via
// auto-detection, anything that does not look like JSON at the DOT parser):
// malformed documents must fail with a positioned *cfgio.Error, never panic,
// and anything that imports must round-trip import→export→import
// byte-identically.
func FuzzImportCFG(f *testing.F) {
	f.Add([]byte(demoJSON))
	f.Add([]byte(`{"procs": [{"name": "m", "blocks": [{"size": 1, "kind": "halt"}]}]}`))
	f.Add([]byte(`{"name": "x", "mem_words": 64, "entry": "m", "instrs": 42,
		"procs": [{"name": "m", "entry_count": 7, "blocks": [
		{"label": "go", "size": 3, "kind": "cond",
		 "edges": [{"to": 1, "weight": 3}, {"to": 1, "weight": 4, "taken": true}]},
		{"size": 2, "kind": "ijump", "edges": [{"to": 0, "weight": 6}, {"to": 2, "weight": 1}]},
		{"size": 1, "kind": "halt"}]}]}`))
	f.Add([]byte(`{"procs": []}`))
	f.Add([]byte(`{"procs": [{"name": "m", "blocks": [{"size": -1, "kind": "halt"}]}]}`))
	f.Add([]byte(`{"prox": 1}`))
	f.Add([]byte("{\"procs\": [,\n}"))
	f.Add([]byte("\x00\x01{ garbage \xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		checkImported(t, data)
	})
}

// FuzzImportDOT drives the DOT parser directly with arbitrary text under
// the same never-panic / positioned-error / byte-stable-round-trip
// invariants.
func FuzzImportDOT(f *testing.F) {
	f.Add("digraph \"d\" {\n  subgraph \"cluster_m\" {\n    \"m/0\" [kind=\"halt\", size=1];\n  }\n}\n")
	f.Add("digraph \"demo\" {\n" +
		"  graph [mem_words=1024, entry=\"m\", instrs=99];\n" +
		"  subgraph \"cluster_m\" {\n" +
		"    label=\"m\";\n" +
		"    entry_count=5;\n" +
		"    \"m/0\" [kind=\"cond\", size=2, label=\"top\"];\n" +
		"    \"m/0\" -> \"m/1\" [weight=2];\n" +
		"    \"m/0\" -> \"m/2\" [weight=3, taken=true];\n" +
		"    \"m/1\" [kind=\"fall\", size=1];\n" +
		"    \"m/1\" -> \"m/2\" [weight=2];\n" +
		"    \"m/2\" [kind=\"halt\", size=1];\n" +
		"  }\n}\n")
	f.Add("digraph x {\n}\n")
	f.Add("digraph \"d\" {\n  subgraph \"cluster_m\" {\n    \"m/0\" [kind=\"br\", size=1];\n    \"m/0\" -> \"m/0\" [weight=1];\n  }\n}\n")
	f.Add("graph [entry=\"m\"];\n")
	f.Add("digraph \"d\" {\n  subgraph \"cluster_m\" {\n    \"m/2\" [kind=\"halt\", size=1];\n  }\n}\n")
	f.Add("// comment only\n")
	f.Add("digraph \"\xff\" {\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, pf, err := ImportDOT([]byte(src))
		if err != nil {
			var ce *Error
			if !errors.As(err, &ce) {
				t.Fatalf("import error is %T, not *cfgio.Error: %v", err, err)
			}
			return
		}
		d1, err := ExportDOT(prog, pf)
		if err != nil {
			t.Fatalf("ExportDOT: %v", err)
		}
		prog2, pf2, err := ImportDOT(d1)
		if err != nil {
			t.Fatalf("canonical DOT export does not re-import: %v\n%s", err, d1)
		}
		d2, err := ExportDOT(prog2, pf2)
		if err != nil {
			t.Fatalf("re-export DOT: %v", err)
		}
		if !bytes.Equal(d1, d2) {
			t.Fatalf("DOT export not byte-stable:\n--- first\n%s\n--- second\n%s", d1, d2)
		}
	})
}
