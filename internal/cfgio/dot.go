package cfgio

import (
	"fmt"
	"strconv"
	"strings"

	"balign/internal/ir"
	"balign/internal/profile"
)

// The DOT encoding is a strict, line-oriented digraph subset: one statement
// per line, one cluster subgraph per procedure, nodes named "proc/idx". It
// renders under graphviz (kind/size/calls are harmless foreign attributes
// there) while staying simple enough to parse with exact line numbers in
// every error.
//
//	digraph "name" {
//	  graph [mem_words=1024, entry="main", instrs=12345];
//	  subgraph "cluster_main" {
//	    label="main";
//	    entry_count=7;
//	    "main/0" [kind="cond", size=3, label="loop", calls="helper"];
//	    "main/0" -> "main/1" [weight=90];
//	    "main/0" -> "main/2" [weight=10, taken=true];
//	  }
//	}

// ImportDOT decodes the DOT CFG encoding with default options.
func ImportDOT(data []byte) (*ir.Program, *profile.Profile, error) {
	return importDOTOptions(data, Options{})
}

func dotErr(line int, elem, msg string, args ...any) error {
	return &Error{Format: "dot", Line: line, Offset: -1, Elem: elem, Msg: fmt.Sprintf(msg, args...)}
}

func importDOTOptions(data []byte, opt Options) (*ir.Program, *profile.Profile, error) {
	d, err := parseDOT(data)
	if err != nil {
		return nil, nil, err
	}
	return build(d, opt)
}

// dotProcState accumulates one subgraph before block order is finalized.
type dotProcState struct {
	docProc
	nodes map[int]*docBlock // by block index
	edges []dotEdgeStmt
}

type dotEdgeStmt struct {
	from int
	edge docEdge
}

func parseDOT(data []byte) (*doc, error) {
	d := &doc{format: "dot"}
	var cur *dotProcState
	sawHeader, closed := false, false

	lines := strings.Split(string(data), "\n")
	for lineNo, raw := range lines {
		line := lineNo + 1
		text := raw
		if i := strings.Index(text, "//"); i >= 0 {
			text = text[:i]
		}
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if closed {
			return nil, dotErr(line, "", "statement after closing brace: %q", text)
		}

		if !sawHeader {
			name, err := parseDotHeader(text, line)
			if err != nil {
				return nil, err
			}
			d.name = name
			sawHeader = true
			continue
		}

		switch {
		case text == "}":
			if cur != nil {
				dp, err := finishDotProc(cur)
				if err != nil {
					return nil, err
				}
				d.procs = append(d.procs, *dp)
				cur = nil
			} else {
				closed = true
			}

		case strings.HasPrefix(text, "graph "):
			if cur != nil {
				return nil, dotErr(line, procElem(cur.name), "graph attributes inside a subgraph")
			}
			attrs, err := parseDotAttrs(strings.TrimPrefix(text, "graph "), line, "graph attributes")
			if err != nil {
				return nil, err
			}
			for _, a := range attrs {
				switch a.key {
				case "mem_words":
					n, err := strconv.Atoi(a.val)
					if err != nil {
						return nil, dotErr(line, "graph attributes", "bad mem_words %q", a.val)
					}
					d.memWords = n
				case "entry":
					d.entry = a.val
				case "instrs":
					n, err := strconv.ParseUint(a.val, 10, 64)
					if err != nil {
						return nil, dotErr(line, "graph attributes", "bad instrs %q", a.val)
					}
					d.instrs = n
				default:
					return nil, dotErr(line, "graph attributes", "unknown attribute %q", a.key)
				}
			}

		case strings.HasPrefix(text, "subgraph "):
			if cur != nil {
				return nil, dotErr(line, procElem(cur.name), "nested subgraph")
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "subgraph "))
			if !strings.HasSuffix(rest, "{") {
				return nil, dotErr(line, "", "subgraph line must end with '{': %q", text)
			}
			name := unquoteDot(strings.TrimSpace(strings.TrimSuffix(rest, "{")))
			const pfx = "cluster_"
			if !strings.HasPrefix(name, pfx) {
				return nil, dotErr(line, "", "subgraph name %q must start with %q", name, pfx)
			}
			cur = &dotProcState{nodes: make(map[int]*docBlock)}
			cur.name = strings.TrimPrefix(name, pfx)
			cur.line = line

		case cur != nil && strings.HasPrefix(text, "label"):
			val, err := parseDotAssign(text, "label", line, procElem(cur.name))
			if err != nil {
				return nil, err
			}
			if val != cur.name {
				return nil, dotErr(line, procElem(cur.name), "subgraph label %q does not match cluster name", val)
			}

		case cur != nil && strings.HasPrefix(text, "entry_count"):
			val, err := parseDotAssign(text, "entry_count", line, procElem(cur.name))
			if err != nil {
				return nil, err
			}
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, dotErr(line, procElem(cur.name), "bad entry_count %q", val)
			}
			cur.entryCount = n

		case cur != nil:
			if err := parseDotNodeOrEdge(cur, text, line); err != nil {
				return nil, err
			}

		default:
			return nil, dotErr(line, "", "statement outside a subgraph: %q", text)
		}
	}
	if !sawHeader {
		return nil, dotErr(len(lines), "", "missing digraph header")
	}
	if cur != nil {
		return nil, dotErr(len(lines), procElem(cur.name), "unterminated subgraph")
	}
	if !closed {
		return nil, dotErr(len(lines), "", "missing closing brace")
	}
	return d, nil
}

func parseDotHeader(text string, line int) (string, error) {
	if !strings.HasPrefix(text, "digraph") || !strings.HasSuffix(text, "{") {
		return "", dotErr(line, "", "expected `digraph \"name\" {`, got %q", text)
	}
	name := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "digraph"), "{"))
	return unquoteDot(name), nil
}

// parseDotAssign parses `key = value ;` (spaces optional).
func parseDotAssign(text, key string, line int, elem string) (string, error) {
	rest := strings.TrimPrefix(text, key)
	rest = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), ";"))
	if !strings.HasPrefix(rest, "=") {
		return "", dotErr(line, elem, "expected %s=value, got %q", key, text)
	}
	return unquoteDot(strings.TrimSpace(strings.TrimPrefix(rest, "="))), nil
}

// parseDotNodeOrEdge handles `"p/i" [attrs];` and `"p/i" -> "p/j" [attrs];`.
func parseDotNodeOrEdge(cur *dotProcState, text string, line int) error {
	pe := procElem(cur.name)
	stmt := strings.TrimSpace(strings.TrimSuffix(text, ";"))

	// Split off a trailing [attrs] list if present.
	attrText := ""
	if i := strings.IndexByte(stmt, '['); i >= 0 {
		if !strings.HasSuffix(stmt, "]") {
			return dotErr(line, pe, "unterminated attribute list: %q", text)
		}
		attrText = stmt[i:]
		stmt = strings.TrimSpace(stmt[:i])
	}

	if from, to, isEdge := splitDotArrow(stmt); isEdge {
		fi, err := parseDotNodeID(from, cur.name, line)
		if err != nil {
			return err
		}
		ti, err := parseDotNodeID(to, cur.name, line)
		if err != nil {
			return err
		}
		e := docEdge{to: ti, line: line}
		if attrText != "" {
			attrs, err := parseDotAttrs(attrText, line, edgeElem(cur.name, fi, ti))
			if err != nil {
				return err
			}
			for _, a := range attrs {
				switch a.key {
				case "weight":
					w, err := strconv.ParseUint(a.val, 10, 64)
					if err != nil {
						return dotErr(line, edgeElem(cur.name, fi, ti), "bad weight %q", a.val)
					}
					e.weight = w
				case "taken":
					b, err := strconv.ParseBool(a.val)
					if err != nil {
						return dotErr(line, edgeElem(cur.name, fi, ti), "bad taken %q", a.val)
					}
					e.taken = b
				default:
					return dotErr(line, edgeElem(cur.name, fi, ti), "unknown attribute %q", a.key)
				}
			}
		}
		cur.edges = append(cur.edges, dotEdgeStmt{from: fi, edge: e})
		return nil
	}

	// Node statement.
	idx, err := parseDotNodeID(stmt, cur.name, line)
	if err != nil {
		return err
	}
	be := blockElem(cur.name, idx)
	if _, dup := cur.nodes[idx]; dup {
		return dotErr(line, be, "duplicate node")
	}
	// size -1 marks "attribute not seen": explicit size=0 is legal (an empty
	// fall-through block, as the aligner leaves behind when it removes a
	// jump), so 0 cannot double as the missing-value sentinel.
	db := &docBlock{line: line, size: -1}
	if attrText != "" {
		attrs, err := parseDotAttrs(attrText, line, be)
		if err != nil {
			return err
		}
		for _, a := range attrs {
			switch a.key {
			case "kind":
				db.kind = a.val
			case "size":
				n, err := strconv.Atoi(a.val)
				if err != nil || n < 0 {
					return dotErr(line, be, "bad size %q", a.val)
				}
				db.size = n
			case "label":
				db.label = a.val
			case "calls":
				for _, c := range strings.Split(a.val, ",") {
					if c = strings.TrimSpace(c); c != "" {
						db.calls = append(db.calls, c)
					}
				}
			default:
				return dotErr(line, be, "unknown attribute %q", a.key)
			}
		}
	}
	if db.kind == "" {
		return dotErr(line, be, "node is missing the kind attribute")
	}
	if db.size < 0 {
		return dotErr(line, be, "node is missing the size attribute")
	}
	cur.nodes[idx] = db
	return nil
}

// splitDotArrow splits an edge statement on its top-level "->".
func splitDotArrow(stmt string) (from, to string, ok bool) {
	depth := false // inside quotes
	for i := 0; i+1 < len(stmt); i++ {
		if stmt[i] == '"' {
			depth = !depth
		}
		if !depth && stmt[i] == '-' && stmt[i+1] == '>' {
			return strings.TrimSpace(stmt[:i]), strings.TrimSpace(stmt[i+2:]), true
		}
	}
	return "", "", false
}

// parseDotNodeID parses `"proc/idx"` (quotes optional) and checks the proc
// part against the enclosing subgraph.
func parseDotNodeID(s, proc string, line int) (int, error) {
	id := unquoteDot(s)
	slash := strings.LastIndexByte(id, '/')
	if slash < 0 {
		return 0, dotErr(line, procElem(proc), "node id %q is not of the form \"proc/idx\"", id)
	}
	if id[:slash] != proc {
		return 0, dotErr(line, procElem(proc), "node id %q names a different procedure than its subgraph", id)
	}
	idx, err := strconv.Atoi(id[slash+1:])
	if err != nil || idx < 0 {
		return 0, dotErr(line, procElem(proc), "bad block index in node id %q", id)
	}
	return idx, nil
}

type dotAttr struct {
	key, val string
}

// parseDotAttrs parses `[k=v, k2="v2"]`, honouring quotes in values.
func parseDotAttrs(s string, line int, elem string) ([]dotAttr, error) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), ";"))
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, dotErr(line, elem, "expected bracketed attribute list, got %q", s)
	}
	s = s[1 : len(s)-1]

	var parts []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if inQuote {
		return nil, dotErr(line, elem, "unterminated quote in attribute list")
	}
	parts = append(parts, s[start:])

	var out []dotAttr
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		eq := strings.IndexByte(p, '=')
		if eq < 0 {
			return nil, dotErr(line, elem, "attribute %q is not of the form key=value", p)
		}
		out = append(out, dotAttr{
			key: strings.TrimSpace(p[:eq]),
			val: unquoteDot(strings.TrimSpace(p[eq+1:])),
		})
	}
	return out, nil
}

func unquoteDot(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

func quoteDot(s string) string { return `"` + s + `"` }

// finishDotProc checks node-index density and assembles the blocks with
// their edges in file order.
func finishDotProc(cur *dotProcState) (*docProc, error) {
	n := len(cur.nodes)
	for idx := 0; idx < n; idx++ {
		if _, ok := cur.nodes[idx]; !ok {
			return nil, dotErr(cur.line, procElem(cur.name),
				"block indices not dense: %d nodes declared but index %d missing", n, idx)
		}
	}
	if n == 0 {
		return nil, dotErr(cur.line, procElem(cur.name), "procedure has no blocks")
	}
	for _, es := range cur.edges {
		if es.from >= n {
			return nil, dotErr(es.edge.line, procElem(cur.name),
				"edge from undeclared block %d", es.from)
		}
		cur.nodes[es.from].edges = append(cur.nodes[es.from].edges, es.edge)
	}
	dp := cur.docProc
	for idx := 0; idx < n; idx++ {
		dp.blocks = append(dp.blocks, *cur.nodes[idx])
	}
	return &dp, nil
}

// ExportDOT renders prog and its profile as the canonical DOT document:
// one cluster per procedure, node line then edge lines per block, stable
// attribute order, trailing newline. Re-importing the output reproduces the
// program and profile, and re-exports byte-identically.
func ExportDOT(prog *ir.Program, pf *profile.Profile) ([]byte, error) {
	d, err := docFromProgram(prog, pf)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %s {\n", quoteDot(d.name))
	fmt.Fprintf(&sb, "  graph [mem_words=%d, entry=%s, instrs=%d];\n", d.memWords, quoteDot(d.entry), d.instrs)
	for _, dp := range d.procs {
		fmt.Fprintf(&sb, "  subgraph %s {\n", quoteDot("cluster_"+dp.name))
		fmt.Fprintf(&sb, "    label=%s;\n", quoteDot(dp.name))
		fmt.Fprintf(&sb, "    entry_count=%d;\n", dp.entryCount)
		for bi, db := range dp.blocks {
			id := quoteDot(fmt.Sprintf("%s/%d", dp.name, bi))
			fmt.Fprintf(&sb, "    %s [kind=%s, size=%d, label=%s", id, quoteDot(db.kind), db.size, quoteDot(db.label))
			if len(db.calls) > 0 {
				fmt.Fprintf(&sb, ", calls=%s", quoteDot(strings.Join(db.calls, ",")))
			}
			sb.WriteString("];\n")
			for _, e := range db.edges {
				fmt.Fprintf(&sb, "    %s -> %s [weight=%d", id, quoteDot(fmt.Sprintf("%s/%d", dp.name, e.to)), e.weight)
				if e.taken {
					sb.WriteString(", taken=true")
				}
				sb.WriteString("];\n")
			}
		}
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return []byte(sb.String()), nil
}
