package cfgio

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"balign/internal/ir"
	"balign/internal/profile"
)

// Wire shapes of the JSON encoding. Field order here is the canonical
// export order.
type jsonDoc struct {
	Name     string     `json:"name,omitempty"`
	MemWords int        `json:"mem_words,omitempty"`
	Entry    string     `json:"entry,omitempty"`
	Instrs   uint64     `json:"instrs,omitempty"`
	Procs    []jsonProc `json:"procs"`
}

type jsonProc struct {
	Name       string      `json:"name"`
	EntryCount uint64      `json:"entry_count,omitempty"`
	Blocks     []jsonBlock `json:"blocks"`
}

type jsonBlock struct {
	Label string     `json:"label,omitempty"`
	Size  int        `json:"size"`
	Kind  string     `json:"kind"`
	Calls []string   `json:"calls,omitempty"`
	Edges []jsonEdge `json:"edges,omitempty"`
}

type jsonEdge struct {
	To     int    `json:"to"`
	Weight uint64 `json:"weight"`
	Taken  bool   `json:"taken,omitempty"`
}

// ImportJSON decodes the JSON CFG encoding with default options.
func ImportJSON(data []byte) (*ir.Program, *profile.Profile, error) {
	return importJSONOptions(data, Options{})
}

func importJSONOptions(data []byte, opt Options) (*ir.Program, *profile.Profile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var jd jsonDoc
	if err := dec.Decode(&jd); err != nil {
		return nil, nil, jsonError(data, dec, err)
	}
	// Reject trailing garbage after the document object.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, nil, jsonError(data, dec, errors.New("trailing data after CFG document"))
	}

	d := &doc{
		format:   "json",
		name:     jd.Name,
		memWords: jd.MemWords,
		entry:    jd.Entry,
		instrs:   jd.Instrs,
	}
	for _, jp := range jd.Procs {
		dp := docProc{name: jp.Name, entryCount: jp.EntryCount}
		for _, jb := range jp.Blocks {
			db := docBlock{label: jb.Label, size: jb.Size, kind: jb.Kind, calls: jb.Calls}
			for _, je := range jb.Edges {
				db.edges = append(db.edges, docEdge{to: je.To, weight: je.Weight, taken: je.Taken})
			}
			dp.blocks = append(dp.blocks, db)
		}
		d.procs = append(d.procs, dp)
	}
	return build(d, opt)
}

// jsonError wraps a JSON decode failure with the byte offset where decoding
// stopped and the 1-based line it falls on.
func jsonError(data []byte, dec *json.Decoder, err error) error {
	off := dec.InputOffset()
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		off = syn.Offset
	case errors.As(err, &typ):
		off = typ.Offset
	}
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	line := 1 + bytes.Count(data[:off], []byte{'\n'})
	elem := ""
	if typ != nil && typ.Field != "" {
		elem = fmt.Sprintf("field %q", typ.Field)
	}
	return &Error{Format: "json", Line: line, Offset: off, Elem: elem, Msg: err.Error()}
}

// ExportJSON renders prog and its profile as the canonical JSON document:
// two-space indentation, procedures and blocks in program order, every block
// labelled, edges fall-before-taken then by target, trailing newline.
// Re-importing the output reproduces the program and profile, and re-exports
// byte-identically.
func ExportJSON(prog *ir.Program, pf *profile.Profile) ([]byte, error) {
	d, err := docFromProgram(prog, pf)
	if err != nil {
		return nil, err
	}
	jd := jsonDoc{
		Name:     d.name,
		MemWords: d.memWords,
		Entry:    d.entry,
		Instrs:   d.instrs,
	}
	for _, dp := range d.procs {
		jp := jsonProc{Name: dp.name, EntryCount: dp.entryCount}
		for _, db := range dp.blocks {
			jb := jsonBlock{Label: db.label, Size: db.size, Kind: db.kind, Calls: db.calls}
			for _, e := range db.edges {
				jb.Edges = append(jb.Edges, jsonEdge{To: e.to, Weight: e.weight, Taken: e.taken})
			}
			jp.Blocks = append(jp.Blocks, jb)
		}
		jd.Procs = append(jd.Procs, jp)
	}
	out, err := json.MarshalIndent(&jd, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("cfgio: export: %w", err)
	}
	return append(out, '\n'), nil
}
