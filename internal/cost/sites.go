package cost

import (
	"balign/internal/ir"
	"balign/internal/profile"
)

// SiteCost is the expected cycle cost of one branch site of a laid-out
// procedure under a model. It is the per-site decomposition of ProcCost:
// summing Cost over ProcSiteCosts(p, pp, m) equals ProcCost(p, pp, m)
// exactly (same floating-point operations in the same per-site order), so
// site diffs between two layouts always reconcile with the procedure
// totals they came from.
type SiteCost struct {
	// Block is the site's block ID in p; Orig is that block's provenance
	// (ir.Block.Orig — ir.NoBlock for rewriter-synthesized jump blocks),
	// which is what lets a site be matched to its counterpart across an
	// alignment rewrite.
	Block ir.BlockID
	Orig  ir.BlockID
	// PC is the branch instruction's address in the laid-out procedure.
	PC uint64
	// Kind is the terminator kind: ir.CondBr or ir.Br.
	Kind ir.Kind
	// Cost is the site's expected cycles under the model.
	Cost float64
}

// ProcSiteCosts prices each costed branch site of a procedure individually,
// in block order: the conditional and unconditional direct branches that
// ProcCost sums (indirect jumps, calls and returns are layout-invariant and
// excluded there too). The procedure must have addresses assigned.
func ProcSiteCosts(p *ir.Proc, pp *profile.ProcProfile, m Model) []SiteCost {
	var sites []SiteCost
	for id, b := range p.Blocks {
		term, ok := b.Terminator()
		if !ok {
			continue
		}
		switch term.Kind() {
		case ir.CondBr:
			tgt := p.Block(term.TargetBlock)
			wTaken := pp.Weight(ir.BlockID(id), term.TargetBlock)
			var wFall uint64
			if f := ir.BlockID(id) + 1; int(f) < len(p.Blocks) {
				wFall = pp.Weight(ir.BlockID(id), f)
				if term.TargetBlock == f {
					// Degenerate branch: both directions reach the same
					// block; use the recorded outcome split if present
					// (mirrors ProcCost).
					c := pp.Branches[ir.BlockID(id)]
					if c.Total() > 0 {
						wTaken, wFall = c.Taken, c.Fall
					}
				}
			}
			backward := tgt.Addr <= b.TermAddr()
			sites = append(sites, SiteCost{
				Block: ir.BlockID(id), Orig: b.Orig, PC: b.TermAddr(),
				Kind: ir.CondBr, Cost: m.CondBranch(wFall, wTaken, backward),
			})
		case ir.Br:
			sites = append(sites, SiteCost{
				Block: ir.BlockID(id), Orig: b.Orig, PC: b.TermAddr(),
				Kind: ir.Br, Cost: m.Uncond(pp.Weight(ir.BlockID(id), term.TargetBlock)),
			})
		}
	}
	return sites
}
