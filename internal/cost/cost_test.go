package cost

import (
	"math"
	"testing"

	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/profile"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestFallthroughModel(t *testing.T) {
	m := FallthroughModel{}
	approx(t, "all fall", m.CondBranch(100, 0, false), 100)
	approx(t, "all taken", m.CondBranch(0, 100, true), 500)
	approx(t, "mixed", m.CondBranch(50, 50, false), 50+250)
	approx(t, "uncond", m.Uncond(10), 20)
}

func TestBTFNTModel(t *testing.T) {
	m := BTFNTModel{}
	approx(t, "taken backward", m.CondBranch(0, 100, true), 200)
	approx(t, "taken forward", m.CondBranch(0, 100, false), 500)
	approx(t, "fall, forward target", m.CondBranch(100, 0, false), 100)
	// A backward branch is predicted taken on every execution, so its
	// fall-throughs mispredict.
	approx(t, "fall, backward target", m.CondBranch(100, 0, true), 500)
	approx(t, "mixed backward", m.CondBranch(10, 90, true), 90*2+10*5)
}

func TestLikelyModel(t *testing.T) {
	m := LikelyModel{}
	// Majority taken: predicted taken (2), minority fall mispredicted (5).
	approx(t, "taken majority", m.CondBranch(10, 90, false), 90*2+10*5)
	// Majority fall: fall costs 1, taken mispredicted.
	approx(t, "fall majority", m.CondBranch(90, 10, false), 90*1+10*5)
	// Tie counts as fall-majority (predict not taken).
	approx(t, "tie", m.CondBranch(50, 50, false), 50*1+50*5)
}

func TestPHTModel(t *testing.T) {
	m := PHTModel{}
	// 90% correct: fall = .9*1+.1*5 = 1.4; taken = .9*2+.1*5 = 2.3.
	approx(t, "fall", m.CondBranch(100, 0, false), 140)
	approx(t, "taken", m.CondBranch(0, 100, false), 230)
	approx(t, "uncond", m.Uncond(100), 200)
}

func TestBTBModel(t *testing.T) {
	m := BTBModel{}
	// takenOK = 1 + .1*1 = 1.1; taken = .9*1.1 + .1*5 = 1.49; fall = 1.4.
	approx(t, "taken", m.CondBranch(0, 100, false), 149)
	approx(t, "fall", m.CondBranch(100, 0, false), 140)
	approx(t, "uncond", m.Uncond(100), 110)
}

func TestTaggedModel(t *testing.T) {
	m := TaggedModel{}
	// 98% correct: fall = .98*1+.02*5 = 1.08; taken = .98*2+.02*5 = 2.06.
	approx(t, "fall", m.CondBranch(100, 0, false), 108)
	approx(t, "taken", m.CondBranch(0, 100, false), 206)
	approx(t, "uncond", m.Uncond(100), 200)
	// The tagged predictors mispredict far less than the PHTs, so almost
	// the whole remaining alignable cost is the taken-side misfetch.
	pht := PHTModel{}
	if gapTagged, gapPHT := m.CondBranch(0, 100, false)-m.CondBranch(100, 0, false),
		pht.CondBranch(0, 100, false)-pht.CondBranch(100, 0, false); gapTagged <= gapPHT {
		t.Errorf("tagged taken-vs-fall gap %v not larger than PHT's %v", gapTagged, gapPHT)
	}
}

func TestModelOrderingMakesAlignmentAttractive(t *testing.T) {
	// For every model, a hot edge as fall-through must cost no more than
	// the same edge taken, and strictly less for the static models.
	for _, m := range []Model{FallthroughModel{}, BTFNTModel{}, LikelyModel{}, PHTModel{}, BTBModel{}, TaggedModel{}} {
		fall := m.CondBranch(1000, 10, false)
		taken := m.CondBranch(10, 1000, false)
		if fall >= taken {
			t.Errorf("%s: fall-through alignment (%v) not cheaper than taken (%v)", m.Name(), fall, taken)
		}
	}
}

func TestForArch(t *testing.T) {
	cases := map[predict.ArchID]string{
		predict.ArchFallthrough: "fallthrough",
		predict.ArchBTFNT:       "btfnt",
		predict.ArchLikely:      "likely",
		predict.ArchPHTDirect:   "pht",
		predict.ArchPHTGshare:   "pht",
		predict.ArchBTB64:       "btb",
		predict.ArchBTB256:      "btb",
		predict.ArchPHTLocal:    "pht",
		predict.ArchTAGE:        "tagged",
		predict.ArchPerceptron:  "tagged",
	}
	for id, want := range cases {
		m, err := ForArch(id)
		if err != nil {
			t.Errorf("ForArch(%s): %v", id, err)
			continue
		}
		if m.Name() != want {
			t.Errorf("ForArch(%s).Name() = %q, want %q", id, m.Name(), want)
		}
	}
	// Every registered architecture must resolve: a descriptor with an
	// unmapped cost group is a registry bug, not input.
	for _, id := range predict.AllArchs() {
		if _, err := ForArch(id); err != nil {
			t.Errorf("ForArch(%s): %v", id, err)
		}
	}
	if _, err := ForArch("bogus"); err == nil {
		t.Error("ForArch(bogus) should error")
	}
}

// loopProc builds the paper's Figure 3 "original" fragment:
//
//	A:  ... condbr -> D (w=1), fall -> B (w=8999)
//	B:  ... fall -> C (w=9000)
//	C:  ... condbr -> A (w=9000... loop), fall -> exit via jump
//
// Simplified to exercise ProcCost's backward/forward distinction.
func loopProc() (*ir.Proc, *profile.ProcProfile) {
	p := &ir.Proc{Name: "loop", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpNop}, {Op: ir.OpBeqz, Rd: 1, TargetBlock: 3}}}, // A
		{Instrs: []ir.Instr{{Op: ir.OpNop}}},                                         // B falls to C
		{Instrs: []ir.Instr{{Op: ir.OpNop}, {Op: ir.OpBnez, Rd: 2, TargetBlock: 0}}}, // C
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},                                        // D
	}}
	prog := &ir.Program{Procs: []*ir.Proc{p}}
	prog.AssignAddresses(0x1000)
	pp := profile.NewProcProfile()
	pp.Edges[profile.Edge{From: 0, To: 3}] = 1
	pp.Edges[profile.Edge{From: 0, To: 1}] = 8999
	pp.Edges[profile.Edge{From: 1, To: 2}] = 9000
	pp.Edges[profile.Edge{From: 2, To: 0}] = 9000
	pp.Edges[profile.Edge{From: 2, To: 3}] = 1
	pp.Branches[0] = profile.BranchCount{Taken: 1, Fall: 8999}
	pp.Branches[2] = profile.BranchCount{Taken: 9000, Fall: 1}
	return p, pp
}

func TestProcCostBTFNT(t *testing.T) {
	p, pp := loopProc()
	got := ProcCost(p, pp, BTFNTModel{})
	// A: fall 8999*1 + taken-forward 1*5 = 9004.
	// C: taken-backward 9000*2 + mispredicted fall 1*5 = 18005 (a backward
	// branch is predicted taken on every execution).
	approx(t, "ProcCost", got, 9004+18005)
}

func TestProcCostFallthroughVsLikely(t *testing.T) {
	p, pp := loopProc()
	ft := ProcCost(p, pp, FallthroughModel{})
	// A: 8999 + 5; C: 9000*5 + 1.
	approx(t, "fallthrough", ft, 8999+5+45000+1)
	lk := ProcCost(p, pp, LikelyModel{})
	// A: majority fall: 8999 + 5; C: majority taken: 9000*2 + 1*5.
	approx(t, "likely", lk, 8999+5+18000+5)
}

func TestProcCostCountsUncond(t *testing.T) {
	p := &ir.Proc{Name: "u", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpBr, TargetBlock: 1}}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	(&ir.Program{Procs: []*ir.Proc{p}}).AssignAddresses(0)
	pp := profile.NewProcProfile()
	pp.Edges[profile.Edge{From: 0, To: 1}] = 7
	approx(t, "uncond cost", ProcCost(p, pp, FallthroughModel{}), 14)
}

func TestProcCostDegenerateBranch(t *testing.T) {
	// Conditional whose taken target is also the fall-through block.
	p := &ir.Proc{Name: "d", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpBeqz, Rd: 1, TargetBlock: 1}}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	(&ir.Program{Procs: []*ir.Proc{p}}).AssignAddresses(0)
	pp := profile.NewProcProfile()
	pp.Edges[profile.Edge{From: 0, To: 1}] = 10
	pp.Branches[0] = profile.BranchCount{Taken: 4, Fall: 6}
	// Fallthrough model: 6*1 + 4*5 = 26 using the outcome split.
	approx(t, "degenerate", ProcCost(p, pp, FallthroughModel{}), 26)
}

func TestProgramCost(t *testing.T) {
	p, pp := loopProc()
	prog := &ir.Program{Name: "x", Procs: []*ir.Proc{p}}
	prog.AssignAddresses(0x1000)
	pf := profile.New("x")
	pf.Procs["loop"] = pp
	if got, want := ProgramCost(prog, pf, BTFNTModel{}), ProcCost(p, pp, BTFNTModel{}); got != want {
		t.Errorf("ProgramCost = %v, want %v", got, want)
	}
	// Profile missing the proc contributes nothing.
	empty := profile.New("x")
	if got := ProgramCost(prog, empty, BTFNTModel{}); got != 0 {
		t.Errorf("ProgramCost with empty profile = %v, want 0", got)
	}
}
