// Package cost implements the paper's architectural cost models (Table 1):
// the per-execution cycle costs of branches under each prediction
// architecture. The Cost and Try15 alignment algorithms consult these models
// to decide which edges are worth making fall-throughs; the same models
// price a finished layout so alternative alignments can be compared.
//
// Table 1 (cycles, including the branch instruction itself):
//
//	unconditional branch            2  (instruction + misfetch)
//	correctly predicted fall-through 1 (instruction)
//	correctly predicted taken        2 (instruction + misfetch)
//	mispredicted                     5 (instruction + mispredict)
//
// For the dynamic architectures the paper adjusts the static table with
// hardware effectiveness assumptions: PHT architectures mispredict
// conditionals 10% of the time; BTB architectures additionally have a 10%
// BTB miss rate, so taken branches pay the misfetch only 10% of the time.
package cost

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/profile"
)

// Table 1 constants, in cycles.
const (
	CyclesFall       = 1.0 // correctly predicted fall-through
	CyclesTakenPred  = 2.0 // correctly predicted taken (instruction + misfetch)
	CyclesUncond     = 2.0 // unconditional branch (instruction + misfetch)
	CyclesMispredict = 5.0 // mispredicted branch (instruction + mispredict)
)

// Dynamic-architecture effectiveness assumptions (paper §6, extended).
const (
	// PHTMispredictRate is the assumed conditional mispredict rate of the
	// PHT architectures.
	PHTMispredictRate = 0.10
	// BTBMissRate is the assumed BTB miss rate: the fraction of taken
	// branches that pay a misfetch because the BTB missed.
	BTBMissRate = 0.10
	// TaggedMispredictRate is the assumed conditional mispredict rate of
	// the modern tagged predictors (TAGE, hashed perceptron). These barely
	// mispredict, so almost the entire alignable cost is the misfetch on
	// correctly predicted taken branches — the regime the paper's open
	// question asks about.
	TaggedMispredictRate = 0.02
)

// Model prices branches under one prediction architecture. Weights are
// execution counts from the edge profile; costs are expected cycles summed
// over those executions.
type Model interface {
	// Name identifies the model.
	Name() string
	// CondBranch returns the expected cycles of a conditional branch whose
	// fall-through direction executes wFall times and whose taken direction
	// executes wTaken times. takenBackward reports whether the taken target
	// is laid out at or before the branch (only BT/FNT distinguishes it).
	CondBranch(wFall, wTaken uint64, takenBackward bool) float64
	// Uncond returns the expected cycles of an unconditional branch
	// executed w times.
	Uncond(w uint64) float64
}

// FallthroughModel prices branches for the FALLTHROUGH architecture: every
// taken conditional is mispredicted.
type FallthroughModel struct{}

// Name implements Model.
func (FallthroughModel) Name() string { return "fallthrough" }

// CondBranch implements Model.
func (FallthroughModel) CondBranch(wFall, wTaken uint64, _ bool) float64 {
	return float64(wFall)*CyclesFall + float64(wTaken)*CyclesMispredict
}

// Uncond implements Model.
func (FallthroughModel) Uncond(w uint64) float64 { return float64(w) * CyclesUncond }

// BTFNTModel prices branches for the backward-taken/forward-not-taken
// architecture. The prediction depends only on the displacement sign, so it
// applies to EVERY execution of the branch: a backward branch is predicted
// taken (its taken executions pay only the misfetch, but its fall-through
// executions are mispredicted), and a forward branch is predicted not taken
// (fall-throughs are free, taken executions mispredict).
type BTFNTModel struct{}

// Name implements Model.
func (BTFNTModel) Name() string { return "btfnt" }

// CondBranch implements Model.
func (BTFNTModel) CondBranch(wFall, wTaken uint64, takenBackward bool) float64 {
	if takenBackward {
		return float64(wTaken)*CyclesTakenPred + float64(wFall)*CyclesMispredict
	}
	return float64(wFall)*CyclesFall + float64(wTaken)*CyclesMispredict
}

// Uncond implements Model.
func (BTFNTModel) Uncond(w uint64) float64 { return float64(w) * CyclesUncond }

// LikelyModel prices branches for the LIKELY architecture: the profile sets
// the hint, so the majority direction is always predicted; alignment can
// only convert predicted-taken (2 cycles) into fall-through (1 cycle).
type LikelyModel struct{}

// Name implements Model.
func (LikelyModel) Name() string { return "likely" }

// CondBranch implements Model.
func (LikelyModel) CondBranch(wFall, wTaken uint64, _ bool) float64 {
	if wTaken > wFall {
		return float64(wTaken)*CyclesTakenPred + float64(wFall)*CyclesMispredict
	}
	return float64(wFall)*CyclesFall + float64(wTaken)*CyclesMispredict
}

// Uncond implements Model.
func (LikelyModel) Uncond(w uint64) float64 { return float64(w) * CyclesUncond }

// PHTModel prices branches for the pattern-history-table architectures:
// conditionals are assumed mispredicted PHTMispredictRate of the time
// regardless of direction; correct predictions still misfetch when taken.
type PHTModel struct{}

// Name implements Model.
func (PHTModel) Name() string { return "pht" }

// CondBranch implements Model.
func (PHTModel) CondBranch(wFall, wTaken uint64, _ bool) float64 {
	ok := 1 - PHTMispredictRate
	fall := ok*CyclesFall + PHTMispredictRate*CyclesMispredict
	taken := ok*CyclesTakenPred + PHTMispredictRate*CyclesMispredict
	return float64(wFall)*fall + float64(wTaken)*taken
}

// Uncond implements Model.
func (PHTModel) Uncond(w uint64) float64 { return float64(w) * CyclesUncond }

// BTBModel prices branches for the branch-target-buffer architectures:
// conditionals mispredict 10% of the time, and taken branches (conditional
// or unconditional) pay the misfetch only on the 10% of executions where the
// BTB misses.
type BTBModel struct{}

// Name implements Model.
func (BTBModel) Name() string { return "btb" }

// CondBranch implements Model.
func (BTBModel) CondBranch(wFall, wTaken uint64, _ bool) float64 {
	ok := 1 - PHTMispredictRate
	// Correctly predicted taken: 1 cycle + misfetch only on BTB miss.
	takenOK := CyclesFall + BTBMissRate*(CyclesTakenPred-CyclesFall)
	fall := ok*CyclesFall + PHTMispredictRate*CyclesMispredict
	taken := ok*takenOK + PHTMispredictRate*CyclesMispredict
	return float64(wFall)*fall + float64(wTaken)*taken
}

// Uncond implements Model.
func (BTBModel) Uncond(w uint64) float64 {
	return float64(w) * (CyclesFall + BTBMissRate*(CyclesUncond-CyclesFall))
}

// TaggedModel prices branches for the modern tagged-predictor
// architectures (TAGE, hashed perceptron): conditionals mispredict only
// TaggedMispredictRate of the time, but without a target buffer every
// taken branch still pays the misfetch — so alignment's residual win is
// almost purely the taken-to-fall-through conversion.
type TaggedModel struct{}

// Name implements Model.
func (TaggedModel) Name() string { return "tagged" }

// CondBranch implements Model.
func (TaggedModel) CondBranch(wFall, wTaken uint64, _ bool) float64 {
	ok := 1 - TaggedMispredictRate
	fall := ok*CyclesFall + TaggedMispredictRate*CyclesMispredict
	taken := ok*CyclesTakenPred + TaggedMispredictRate*CyclesMispredict
	return float64(wFall)*fall + float64(wTaken)*taken
}

// Uncond implements Model.
func (TaggedModel) Uncond(w uint64) float64 { return float64(w) * CyclesUncond }

// modelForGroup maps a registry cost group to its model.
var modelForGroup = map[predict.CostGroup]Model{
	predict.CostFallthrough: FallthroughModel{},
	predict.CostBTFNT:       BTFNTModel{},
	predict.CostLikely:      LikelyModel{},
	predict.CostPHT:         PHTModel{},
	predict.CostBTB:         BTBModel{},
	predict.CostTagged:      TaggedModel{},
}

// ForArch returns the alignment cost model matching a simulated
// architecture, resolved through the architecture registry: the
// descriptor's cost group picks the model, so a newly registered
// architecture is priced without touching this package.
func ForArch(id predict.ArchID) (Model, error) {
	d, ok := predict.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("cost: no model for architecture %q (known: %v)", id, predict.KnownArchNames())
	}
	m, ok := modelForGroup[d.CostGroup]
	if !ok {
		return nil, fmt.Errorf("cost: architecture %q has unmapped cost group %q", id, d.CostGroup)
	}
	return m, nil
}

// ProcCost prices a procedure's final layout under a model: the sum over
// all conditional and unconditional branches of their expected cycles, using
// edge weights from pp (which must be keyed by p's block IDs). Indirect
// jumps, calls and returns cost the same under every layout and are
// excluded. The procedure must have addresses assigned (BT/FNT needs
// branch/target positions).
func ProcCost(p *ir.Proc, pp *profile.ProcProfile, m Model) float64 {
	total := 0.0
	for id, b := range p.Blocks {
		term, ok := b.Terminator()
		if !ok {
			continue
		}
		switch term.Kind() {
		case ir.CondBr:
			tgt := p.Block(term.TargetBlock)
			wTaken := pp.Weight(ir.BlockID(id), term.TargetBlock)
			var wFall uint64
			if f := ir.BlockID(id) + 1; int(f) < len(p.Blocks) {
				wFall = pp.Weight(ir.BlockID(id), f)
				if term.TargetBlock == f {
					// Degenerate branch: both directions reach the same
					// block; treat the recorded outcome split if present.
					c := pp.Branches[ir.BlockID(id)]
					if c.Total() > 0 {
						wTaken, wFall = c.Taken, c.Fall
					}
				}
			}
			backward := tgt.Addr <= b.TermAddr()
			total += m.CondBranch(wFall, wTaken, backward)
		case ir.Br:
			total += m.Uncond(pp.Weight(ir.BlockID(id), term.TargetBlock))
		}
	}
	return total
}

// ProgramCost sums ProcCost over every procedure of a program using the
// profile keyed by procedure name.
func ProgramCost(prog *ir.Program, pf *profile.Profile, m Model) float64 {
	total := 0.0
	for _, p := range prog.Procs {
		if pp, ok := pf.Procs[p.Name]; ok {
			total += ProcCost(p, pp, m)
		}
	}
	return total
}
