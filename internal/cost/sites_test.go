package cost_test

import (
	"math"
	"testing"

	"balign/internal/asm"
	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/vm"
)

const sitesSrc = `
mem 16
proc main
    li r1, 50
loop:
    addi r2, r2, 1
    andi r3, r2, 3
    bnez r3, hot
    addi r4, r4, 1
    br join
hot:
    addi r5, r5, 1
join:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`

// TestProcSiteCostsSumEqualsProcCost asserts the per-site decomposition
// reconciles exactly with the procedure total — on the original layout and
// on every algorithm's aligned layout, under every architecture's model.
func TestProcSiteCostsSumEqualsProcCost(t *testing.T) {
	prog, err := asm.Assemble(sitesSrc)
	if err != nil {
		t.Fatal(err)
	}
	col := profile.NewCollector(prog)
	if _, err := vm.New(prog).Run(nil, col); err != nil {
		t.Fatal(err)
	}
	pf := col.Profile()

	for _, arch := range predict.AllArchs() {
		m, err := cost.ForArch(arch)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []core.Algorithm{core.AlgoOriginal, core.AlgoGreedy, core.AlgoCost, core.AlgoTryN} {
			opts := core.Options{Algorithm: algo}
			if algo == core.AlgoCost || algo == core.AlgoTryN {
				opts.Model = m
			}
			res, err := core.AlignProgram(prog, pf, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, proc := range res.Prog.Procs {
				pp, ok := res.Prof.Procs[proc.Name]
				if !ok {
					continue
				}
				want := cost.ProcCost(proc, pp, m)
				sum := 0.0
				for _, sc := range cost.ProcSiteCosts(proc, pp, m) {
					sum += sc.Cost
				}
				if math.Abs(sum-want) > 1e-9 {
					t.Errorf("%s/%s/%s: site sum %.9f != proc cost %.9f",
						arch, algo, proc.Name, sum, want)
				}
			}
		}
	}
}
