package balign_test

import (
	"testing"

	"balign"
)

const quickSrc = `
mem 64
proc main
    li r1, 500
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`

func TestFacadeEndToEnd(t *testing.T) {
	prog, err := balign.Assemble(quickSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	prof, origInstrs, err := balign.ProfileVM(prog, nil)
	if err != nil {
		t.Fatalf("ProfileVM: %v", err)
	}
	if origInstrs == 0 || prof.TotalEdgeWeight() == 0 {
		t.Fatal("profiling produced nothing")
	}

	res, err := balign.Align(prog, prof, balign.Options{
		Algorithm: balign.AlgoTryN,
		Model:     balign.ModelFallthrough,
	})
	if err != nil {
		t.Fatalf("Align: %v", err)
	}

	before, _, err := balign.SimulateVM(balign.ArchFallthrough, prog, prof, nil)
	if err != nil {
		t.Fatalf("SimulateVM before: %v", err)
	}
	after, alignedInstrs, err := balign.SimulateVM(balign.ArchFallthrough, res.Prog, res.Prof, nil)
	if err != nil {
		t.Fatalf("SimulateVM after: %v", err)
	}

	cpiBefore := balign.RelativeCPI(origInstrs, origInstrs, balign.BEP(before))
	cpiAfter := balign.RelativeCPI(origInstrs, alignedInstrs, balign.BEP(after))
	if cpiAfter >= cpiBefore {
		t.Errorf("alignment did not improve CPI: %.3f -> %.3f", cpiBefore, cpiAfter)
	}
	if balign.LayoutCost(res.Prog, res.Prof, balign.ModelFallthrough) >=
		balign.LayoutCost(prog, prof, balign.ModelFallthrough) {
		t.Error("alignment did not reduce layout cost")
	}
}

func TestFacadeModelFor(t *testing.T) {
	for _, arch := range []balign.ArchID{
		balign.ArchFallthrough, balign.ArchBTFNT, balign.ArchLikely,
		balign.ArchPHTDirect, balign.ArchPHTGshare, balign.ArchBTB64, balign.ArchBTB256,
	} {
		if _, err := balign.ModelFor(arch); err != nil {
			t.Errorf("ModelFor(%s): %v", arch, err)
		}
	}
}

func TestFacadeMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble of garbage did not panic")
		}
	}()
	balign.MustAssemble("not a program")
}

func TestFacadeLikelyNeedsProfile(t *testing.T) {
	prog := balign.MustAssemble(quickSrc)
	if _, _, err := balign.SimulateVM(balign.ArchLikely, prog, nil, nil); err == nil {
		t.Error("LIKELY simulation without a profile should error")
	}
}

func TestFacadeUnrollAndReorder(t *testing.T) {
	src := `
mem 16
proc main
    li r1, 500
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bnez r1, loop
    call helper
    halt
endproc
proc helper
    addi r3, r3, 1
    ret
endproc
`
	prog := balign.MustAssemble(src)
	prof, _, err := balign.ProfileVM(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	up, uprof, stats, err := balign.Unroll(prog, prof, balign.DefaultUnrollOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.LoopsUnrolled != 1 {
		t.Errorf("LoopsUnrolled = %d, want 1", stats.LoopsUnrolled)
	}
	res, err := balign.Align(up, uprof, balign.Options{
		Algorithm: balign.AlgoTryN, Model: balign.ModelFallthrough,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := balign.SimulateVM(balign.ArchFallthrough, res.Prog, res.Prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cond == 0 {
		t.Fatal("no conditionals simulated")
	}

	ro, err := balign.ReorderProcedures(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Procs[0].Name != "main" {
		t.Errorf("entry proc moved to %q", ro.Procs[0].Name)
	}
}
